"""Tests for the classic stereo matching substrate."""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.stereo import (
    block_match,
    elas,
    error_rate,
    gcsf,
    guided_block_match,
    sad_cost_volume,
    sgm,
    shift_right_image,
)
from repro.stereo.block_matching import _BIG, _subpixel_refine
from repro.stereo.sgm import _DIRECTIONS_8, aggregate_path, aggregate_volume

MAX_DISP = 48


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(7).render(0)


def synthetic_pair(d=6, size=(40, 80), seed=0):
    """Uniform-disparity pair with the paper's convention
    ``right[y, x + d] = left[y, x]``: both views crop a shared texture,
    the right view starting ``d`` columns earlier."""
    rng = np.random.default_rng(seed)
    from scipy import ndimage

    tex = ndimage.gaussian_filter(rng.normal(size=(size[0], size[1] + d)), 1.0)
    left = tex[:, d:]
    right = tex[:, :-d] if d else tex
    return left, right


class TestShift:
    def test_zero_shift_copies(self):
        # regression: d == 0 used to return the input aliased, so
        # writing through the result corrupted the caller's image
        img = np.arange(12.0).reshape(3, 4)
        out = shift_right_image(img, 0)
        assert out is not img
        assert np.array_equal(out, img)
        out[0, 0] = -1.0
        assert img[0, 0] == 0.0

    def test_positive_shift(self):
        img = np.arange(12.0).reshape(3, 4)
        out = shift_right_image(img, 1)
        assert np.array_equal(out[:, :-1], img[:, 1:])

    def test_negative_shift(self):
        img = np.arange(12.0).reshape(3, 4)
        out = shift_right_image(img, -1)
        assert np.array_equal(out[:, 1:], img[:, :-1])


class TestCostVolume:
    def test_shape(self, frame):
        cost = sad_cost_volume(frame.left, frame.right, 16, block_size=5)
        assert cost.shape == (16,) + frame.shape

    def test_true_disparity_minimises_cost(self):
        left, right = synthetic_pair(d=6)
        cost = sad_cost_volume(left, right, 12, block_size=7)
        wta = cost.argmin(axis=0)
        inner = wta[5:-5, 5:-11]
        assert (inner == 6).mean() > 0.95

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sad_cost_volume(np.zeros((4, 4)), np.zeros((4, 5)), 4)

    def test_bad_max_disp_raises(self):
        with pytest.raises(ValueError):
            sad_cost_volume(np.zeros((4, 4)), np.zeros((4, 4)), 0)

    def test_color_input_collapsed(self):
        rng = np.random.default_rng(0)
        img = rng.normal(size=(16, 24, 3))
        cost = sad_cost_volume(img, img, 4)
        assert cost.shape == (4, 16, 24)
        assert np.allclose(cost[0], 0.0)

    def test_precision_knob_sets_dtype(self):
        left, right = synthetic_pair(d=2, size=(12, 20))
        assert sad_cost_volume(left, right, 4).dtype == np.float64
        vol32 = sad_cost_volume(left, right, 4, precision="float32")
        assert vol32.dtype == np.float32
        assert np.allclose(
            vol32, sad_cost_volume(left, right, 4), atol=1e-5
        )

    def test_unknown_precision_raises(self):
        left, right = synthetic_pair(d=2, size=(12, 20))
        with pytest.raises(ValueError, match="precision"):
            sad_cost_volume(left, right, 4, precision="float16")


class TestBlockMatch:
    def test_recovers_uniform_disparity(self):
        left, right = synthetic_pair(d=6)
        disp = block_match(left, right, 12, block_size=7)
        inner = disp[5:-5, 5:-11]
        assert np.abs(inner - 6).mean() < 0.5

    def test_subpixel_within_half_pixel_of_integer(self):
        left, right = synthetic_pair(d=4)
        d_int = block_match(left, right, 8, subpixel=False)
        d_sub = block_match(left, right, 8, subpixel=True)
        assert np.abs(d_int - d_sub).max() <= 0.5

    def test_scene_error_reasonable(self, frame):
        disp = block_match(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 25.0


class TestGuidedBlockMatch:
    def test_perfect_init_kept(self, frame):
        disp = guided_block_match(
            frame.left, frame.right, frame.disparity, radius=3
        )
        assert error_rate(disp, frame.disparity) < 10.0

    def test_refines_noisy_init(self, frame):
        rng = np.random.default_rng(0)
        noisy = frame.disparity + rng.normal(0, 1.5, frame.disparity.shape)
        refined = guided_block_match(frame.left, frame.right, noisy, radius=4)
        assert error_rate(refined, frame.disparity) <= error_rate(
            noisy, frame.disparity
        ) + 5.0

    def test_init_shape_checked(self, frame):
        with pytest.raises(ValueError):
            guided_block_match(frame.left, frame.right, np.zeros((3, 3)))

    def test_never_negative(self, frame):
        init = np.zeros(frame.shape)
        disp = guided_block_match(frame.left, frame.right, init, radius=2)
        assert (disp >= 0).all()

    def test_precision_float32_supported(self, frame):
        disp = guided_block_match(
            frame.left, frame.right, frame.disparity, precision="float32"
        )
        assert disp.shape == frame.shape and np.isfinite(disp).all()


class TestGuidedBorderConservatism:
    """The accept-margin guarantee must hold at the image border too.

    Regression tests for two confirmed bugs: (1) right-edge pixels
    whose init-offset candidate was out of range (``x + init >= w`` →
    sentinel cost) silently lost the accept-margin keep, letting a
    nearer offset win against edge-replicated texture and move a
    *perfect* init by several pixels; (2) when every candidate was out
    of range, the argmin over all-sentinel costs picked ``-radius``
    and fabricated a confident-looking disparity.
    """

    def _pair(self, d=6):
        return synthetic_pair(d=d)

    def test_perfect_init_never_moved_beyond_half_pixel(self):
        left, right = self._pair(d=6)
        h, w = left.shape
        init = np.full((h, w), 6.0)
        reachable = np.clip(init, 0.0, np.arange(w - 1, -1, -1.0)[None, :])
        for margin in (0.1, 0.5, 2.0):
            out = guided_block_match(
                left, right, init, radius=4, accept_margin=margin
            )
            assert np.abs(out - reachable).max() <= 0.5, margin

    def test_right_edge_band_keeps_clipped_init_exactly(self):
        left, right = self._pair(d=6)
        h, w = left.shape
        init = np.full((h, w), 6.0)
        out = guided_block_match(left, right, init, radius=4, accept_margin=0.5)
        # pixels whose init candidate reads past the right edge fall
        # back to the geometrically reachable clip of the init — no
        # sub-pixel nudge, no nearer-offset "win"
        edge = np.arange(w)[None, :] + 6 >= w
        reachable = np.clip(init, 0.0, np.arange(w - 1, -1, -1.0)[None, :])
        assert np.array_equal(
            np.broadcast_to(out, (h, w))[np.broadcast_to(edge, (h, w))],
            np.broadcast_to(reachable, (h, w))[np.broadcast_to(edge, (h, w))],
        )

    @pytest.mark.parametrize("subpixel", [True, False])
    @pytest.mark.parametrize("margin", [0.0, 0.5])
    def test_all_invalid_negative_init_returns_zero(self, subpixel, margin):
        left, right = self._pair(d=6)
        init = np.full(left.shape, -50.0)
        out = guided_block_match(
            left, right, init, radius=4,
            subpixel=subpixel, accept_margin=margin,
        )
        # clipped init: max(-50, 0) == 0 everywhere — and deliberately
        # so, not via argmin over sentinel costs
        assert np.array_equal(out, np.zeros_like(out))

    @pytest.mark.parametrize("subpixel", [True, False])
    @pytest.mark.parametrize("margin", [0.0, 0.5])
    def test_all_invalid_beyond_right_edge_returns_clipped_init(
        self, subpixel, margin
    ):
        left, right = self._pair(d=6)
        h, w = left.shape
        init = np.full((h, w), float(w + 10))  # every candidate past w
        out = guided_block_match(
            left, right, init, radius=4,
            subpixel=subpixel, accept_margin=margin,
        )
        reachable = np.broadcast_to(
            np.arange(w - 1, -1, -1.0)[None, :], (h, w)
        )
        # the old argmin fabricated base - radius ≈ w + 6 here
        assert np.array_equal(out, reachable)

    def test_margin_zero_interior_search_unchanged(self):
        left, right = self._pair(d=6)
        h, w = left.shape
        out = guided_block_match(
            left, right, np.full((h, w), 4.0), radius=3, accept_margin=0.0
        )
        inner = out[5:-5, 5 : -(6 + 5)]
        # with no margin the search is free to move — and should land
        # on the true disparity away from the border
        assert np.abs(inner - 6.0).mean() < 0.5


class TestSubpixelRefine:
    def test_plateau_keeps_integer_disparity(self):
        """Zero-curvature fits (e.g. saturated ``_BIG`` regions) must
        not shift the winner — regression for the ``np.maximum`` clamp
        that turned them into +/- 0.5 px offsets."""
        cost = np.full((5, 3, 4), _BIG)
        disp = np.full((3, 4), 2.0)
        assert np.array_equal(_subpixel_refine(cost, disp), disp)

    def test_concave_fit_keeps_integer_disparity(self):
        """A negative-curvature cost triple has no interior minimum.

        ``guided_block_match``'s accept margin can keep a non-argmin
        index, so the refined index's neighbours may both be cheaper;
        the old clamp divided by +1e-12 and produced a spurious half-
        pixel shift here."""
        cost = np.empty((3, 2, 2))
        cost[0], cost[1], cost[2] = 1.0, 0.8, 0.0  # denom = -0.6
        disp = np.ones((2, 2))
        assert np.array_equal(_subpixel_refine(cost, disp), disp)

    def test_convex_fit_interpolates(self):
        cost = np.empty((3, 2, 2))
        cost[0], cost[1], cost[2] = 1.0, 0.2, 0.6  # denom = 1.2
        refined = _subpixel_refine(cost, np.ones((2, 2)))
        assert np.allclose(refined, 1.0 + (1.0 - 0.6) / (2 * 1.2))

    def test_border_disparities_never_shift(self):
        rng = np.random.default_rng(3)
        cost = rng.uniform(size=(4, 5, 5))
        for edge in (0.0, 3.0):  # first and last disparity level
            disp = np.full((5, 5), edge)
            assert np.array_equal(_subpixel_refine(cost, disp), disp)


def _reference_aggregate(cost, dy, dx, p1, p2):
    """Scalar SGM path DP, path restart at every border (L_r = C).

    The grouping ``cost + (best - floor)`` (not ``(cost + best) -
    floor``) and the shared-constant adds mirror the exact IEEE
    operations of the vectorized sweep, so the pinning below can
    demand bit-identity, not closeness.
    """
    d_levels, h, w = cost.shape
    out = np.empty_like(cost)
    ys = range(h) if dy >= 0 else range(h - 1, -1, -1)
    xs = range(w) if dx >= 0 else range(w - 1, -1, -1)
    for y in ys:
        for x in xs:
            py, px = y - dy, x - dx
            if not (0 <= py < h and 0 <= px < w):
                out[:, y, x] = cost[:, y, x]
                continue
            prev = out[:, py, px]
            floor = prev.min()
            for d in range(d_levels):
                best = min(
                    prev[d],
                    prev[d - 1] + p1 if d > 0 else np.inf,
                    prev[d + 1] + p1 if d < d_levels - 1 else np.inf,
                    floor + p2,
                )
                out[d, y, x] = cost[d, y, x] + (best - floor)
    return out


class TestAggregatePathGolden:
    P1, P2 = 0.05, 0.5

    @pytest.fixture(scope="class")
    def volume(self):
        rng = np.random.default_rng(11)
        return rng.uniform(size=(5, 6, 7))

    @pytest.mark.parametrize("dy,dx", _DIRECTIONS_8)
    def test_matches_scalar_reference(self, volume, dy, dx):
        got = aggregate_path(volume, dy, dx, self.P1, self.P2)
        want = _reference_aggregate(volume, dy, dx, self.P1, self.P2)
        assert np.array_equal(got, want)  # bit-identical, all 8 paths

    @pytest.mark.parametrize("dy,dx", [(1, 1), (1, -1), (-1, 1), (-1, -1)])
    def test_diagonal_paths_restart_at_borders(self, volume, dy, dx):
        """Border-entering pixels have no in-image predecessor, so
        their aggregated cost is the raw matching cost — regression
        for the replicate-at-the-border aggregation term."""
        agg = aggregate_path(volume, dy, dx, self.P1, self.P2)
        entry_row = 0 if dy > 0 else -1
        entry_col = 0 if dx > 0 else -1
        assert np.array_equal(agg[:, entry_row, :], volume[:, entry_row, :])
        assert np.array_equal(agg[:, :, entry_col], volume[:, :, entry_col])

    def test_sgm_wta_pinned_to_reference(self, volume):
        """Pin the summed 4-path and 8-path aggregations (and their
        WTA disparities) to the scalar reference, bit for bit."""
        for paths in (4, 8):
            total = sum(
                _reference_aggregate(volume, dy, dx, self.P1, self.P2)
                for dy, dx in _DIRECTIONS_8[:paths]
            )
            got = sum(
                aggregate_path(volume, dy, dx, self.P1, self.P2)
                for dy, dx in _DIRECTIONS_8[:paths]
            )
            assert np.array_equal(got, total)
            assert np.array_equal(got.argmin(axis=0), total.argmin(axis=0))

    @pytest.mark.parametrize("paths", [2, 4, 8])
    def test_fused_volume_matches_per_direction_sum(self, volume, paths):
        """``aggregate_volume`` (fused sweeps, reused buffers) must be
        bit-identical to summing per-direction ``aggregate_path``
        volumes in direction order — the exact reduction the
        direction-parallel executor performs."""
        want = np.zeros_like(volume)
        for dy, dx in _DIRECTIONS_8[:paths]:
            want += aggregate_path(volume, dy, dx, self.P1, self.P2)
        got = aggregate_volume(volume, self.P1, self.P2, paths)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize(
        "shape",
        [(5, 1, 7), (5, 6, 1), (1, 6, 7), (2, 6, 7), (5, 1, 1), (4, 1, 2), (4, 2, 1)],
    )
    def test_degenerate_shapes_pinned(self, shape):
        """One-pixel-wide / one-pixel-tall frames and tiny disparity
        ranges: the sweeps' restart and size-1-plane handling must stay
        bit-identical to the scalar DP (regression for the transposed
        view that aliases the input when a plane has size 1)."""
        rng = np.random.default_rng(int(np.prod(shape)))
        volume = rng.uniform(size=shape)
        before = volume.copy()
        for dy, dx in _DIRECTIONS_8:
            got = aggregate_path(volume, dy, dx, self.P1, self.P2)
            want = _reference_aggregate(volume, dy, dx, self.P1, self.P2)
            assert np.array_equal(got, want), (dy, dx)
        for paths in (2, 4, 8):
            want = np.zeros_like(volume)
            for dy, dx in _DIRECTIONS_8[:paths]:
                want += _reference_aggregate(volume, dy, dx, self.P1, self.P2)
            assert np.array_equal(
                aggregate_volume(volume, self.P1, self.P2, paths), want
            )
        assert np.array_equal(volume, before)  # inputs never mutated


class TestSGM:
    def test_beats_plain_bm_on_scene(self, frame):
        bm = block_match(frame.left, frame.right, MAX_DISP)
        sg = sgm(frame.left, frame.right, MAX_DISP)
        assert error_rate(sg, frame.disparity) < error_rate(bm, frame.disparity) + 2.0

    def test_paths_validation(self, frame):
        with pytest.raises(ValueError):
            sgm(frame.left, frame.right, 8, paths=3)

    def test_more_paths_not_worse(self, frame):
        e4 = error_rate(sgm(frame.left, frame.right, MAX_DISP, paths=4), frame.disparity)
        e8 = error_rate(sgm(frame.left, frame.right, MAX_DISP, paths=8), frame.disparity)
        assert e8 <= e4 + 2.0

    def test_smoothness_reduces_speckle(self, frame):
        bm = block_match(frame.left, frame.right, MAX_DISP, subpixel=False)
        sg = sgm(frame.left, frame.right, MAX_DISP, subpixel=False)
        # total variation should drop under the smoothness prior
        tv = lambda d: np.abs(np.diff(d, axis=1)).sum()
        assert tv(sg) < tv(bm)


class TestELASAndGCSF:
    def test_elas_reasonable(self, frame):
        disp = elas(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 30.0

    def test_gcsf_reasonable(self, frame):
        disp = gcsf(frame.left, frame.right, MAX_DISP)
        assert error_rate(disp, frame.disparity) < 30.0

    def test_gcsf_all_pixels_assigned(self, frame):
        disp = gcsf(frame.left, frame.right, MAX_DISP)
        assert (disp >= 0).all()
