"""Tests for the runnable transformed-deconvolution layers."""

import numpy as np
import pytest

from repro.deconv.runtime import TransformedDeconv, transform_network
from repro.nn import Conv, Deconv, LeakyReLU, Sequential


def small_decoder(bias=False):
    rng = np.random.default_rng(0)
    b = rng.normal(size=4) if bias else None
    return Sequential(
        [
            Conv(2, 8, 3, stride=2, padding=1, name="enc", rng=rng),
            LeakyReLU(),
            Deconv(8, 4, 4, stride=2, padding=1, name="dec", rng=rng, bias=b),
        ],
        name="tiny",
    )


class TestTransformedDeconv:
    def test_wraps_only_deconv(self):
        with pytest.raises(TypeError):
            TransformedDeconv(Conv(1, 1, 3))

    def test_numeric_equivalence(self):
        rng = np.random.default_rng(1)
        layer = Deconv(8, 4, 4, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(8, 10, 14))
        assert np.allclose(TransformedDeconv(layer)(x), layer(x))

    def test_bias_preserved(self):
        rng = np.random.default_rng(2)
        layer = Deconv(4, 2, 4, stride=2, padding=1, rng=rng,
                       bias=np.array([1.0, -1.0]))
        x = rng.normal(size=(4, 6, 6))
        assert np.allclose(TransformedDeconv(layer)(x), layer(x))

    def test_3d_equivalence(self):
        rng = np.random.default_rng(3)
        layer = Deconv(2, 2, (3, 3, 3), stride=2, padding=1, rng=rng)
        x = rng.normal(size=(2, 4, 5, 6))
        assert np.allclose(TransformedDeconv(layer)(x), layer(x))

    def test_output_shape_delegates(self):
        layer = Deconv(8, 4, 4, stride=2, padding=1)
        assert TransformedDeconv(layer).output_shape((8, 10, 14)) == \
            layer.output_shape((8, 10, 14))


class TestTransformNetwork:
    def test_whole_network_equivalence(self):
        net = small_decoder(bias=True)
        tnet = transform_network(net)
        x = np.random.default_rng(4).normal(size=(2, 16, 16))
        assert np.allclose(tnet(x), net(x))

    def test_original_untouched(self):
        net = small_decoder()
        tnet = transform_network(net)
        assert isinstance(net.layers[2], Deconv)
        assert isinstance(tnet.layers[2], TransformedDeconv)

    def test_name_tagged(self):
        tnet = transform_network(small_decoder())
        assert tnet.name.endswith("[dct]")
