"""DSE autotuner: a deterministic model, a shipped table, a live default.

The autotuner's contract has three parts: the analytical latency model
behaves (positive, burst-amortised bandwidth, sane scaling), the
search is **deterministic** (same inputs, same table — and the table
shipped as package data is exactly what the in-tree model builds), and
``TileExecutor(tile_rows="auto")`` actually consumes it.
"""

import json

import pytest

from repro.parallel import TileExecutor
from repro.parallel.autotune import (
    DEFAULT_MODEL,
    SIZES,
    WORKER_GRID,
    LatencyModel,
    build_table,
    load_table,
    predict_latency,
    save_table,
    search_config,
    table_path,
    tuned_tile_rows,
)


class TestLatencyModel:
    def test_effective_bandwidth_below_raw(self):
        eff = DEFAULT_MODEL.effective_bandwidth(20.0, 1 << 20)
        assert 0 < eff < 20.0e9

    def test_effective_bandwidth_grows_with_burst(self):
        small = DEFAULT_MODEL.effective_bandwidth(20.0, 1 << 12)
        large = DEFAULT_MODEL.effective_bandwidth(20.0, 1 << 26)
        assert small < large

    def test_transfer_seconds_zero_for_empty(self):
        assert DEFAULT_MODEL.transfer_seconds(20.0, 0) == 0.0

    @pytest.mark.parametrize(
        "kernel", ["bm", "census", "farneback", "guided", "sgm"]
    )
    def test_predictions_positive(self, kernel):
        for workers in (1, 2, 8):
            assert predict_latency(kernel, (270, 480), 32, workers) > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            predict_latency("orb", (270, 480), 32, 2)

    def test_parallel_beats_serial_on_big_frames(self):
        """On a large frame the model must reward real parallelism —
        otherwise the whole search would degenerate to workers=1."""
        serial = predict_latency("sgm", (540, 960), 64, 1)
        parallel = predict_latency("sgm", (540, 960), 64, 8)
        assert parallel < serial

    def test_tiny_bands_pay_dispatch(self):
        """One-row bands on a big frame pay per-job dispatch overhead;
        the model must see that or it would always pick tile_rows=1."""
        tiny = predict_latency("bm", (540, 960), 1, 4)
        sane = predict_latency("bm", (540, 960), 32, 4)
        assert sane < tiny


class TestSearchDeterminism:
    def test_same_inputs_same_config(self):
        a = search_config("sgm", (270, 480), workers=4)
        b = search_config("sgm", (270, 480), workers=4)
        assert a == b

    def test_workers_pinned(self):
        cfg = search_config("bm", (270, 480), workers=2)
        assert cfg.workers == 2

    def test_table_is_reproducible(self):
        assert build_table() == build_table()

    def test_table_json_round_trips(self, tmp_path):
        table = build_table(sizes=((96, 160),), worker_grid=(1, 2))
        path = save_table(table, tmp_path / "t.json")
        assert json.loads(path.read_text()) == table

    def test_custom_model_changes_table(self):
        """The table is a function of the model, not a constant."""
        slow_pickle = LatencyModel(pickle_gbs=0.001, dispatch_us=50000.0)
        assert build_table(slow_pickle, sizes=((270, 480),)) != build_table(
            sizes=((270, 480),)
        )


class TestShippedTable:
    def test_package_data_present(self):
        assert table_path().exists(), (
            "tuned_configs.json must ship with the package "
            "(regenerate: python -m repro.parallel.autotune)"
        )

    def test_package_data_matches_model(self):
        """The shipped table is exactly what the in-tree model builds —
        i.e. it was regenerated after the last model change."""
        assert load_table() == build_table()

    def test_covers_grid(self):
        table = load_table()
        for kernel in ("bm", "census", "farneback", "guided", "sgm"):
            entries = table["kernels"][kernel]
            for h, w in SIZES:
                entry = entries[f"{h}x{w}"]
                assert set(entry["by_workers"]) == {str(v) for v in WORKER_GRID}
                assert entry["best"]["tile_rows"] >= 1


class TestTunedLookup:
    def test_exact_size_hit(self):
        rows = tuned_tile_rows("sgm", (270, 480), 4)
        assert isinstance(rows, int) and rows >= 1

    def test_off_grid_size_snaps_to_nearest(self):
        near = tuned_tile_rows("bm", (280, 470), 4)
        assert near == tuned_tile_rows("bm", (270, 480), 4)

    def test_off_grid_workers_snap(self):
        assert tuned_tile_rows("bm", (270, 480), 3) in {
            tuned_tile_rows("bm", (270, 480), 2),
            tuned_tile_rows("bm", (270, 480), 4),
        }

    def test_unknown_kernel_returns_none(self):
        assert tuned_tile_rows("orb", (270, 480), 4) is None


class TestExecutorAutoDefault:
    def test_auto_is_the_default(self):
        assert TileExecutor().tile_rows == "auto"

    def test_single_worker_resolves_to_one_band(self):
        ex = TileExecutor(workers=1)
        assert ex._n_bands(270, "sad_cost", (270, 480)) == 1

    def test_multi_worker_consults_table(self):
        ex = TileExecutor(workers=4)
        tuned = tuned_tile_rows("sgm", (270, 480), 4)
        rows = min(tuned, -(-270 // 4))  # clamped: never fewer bands than workers
        assert ex._n_bands(270, "sad_cost", (270, 480)) == -(-270 // rows)

    def test_small_frame_still_feeds_every_worker(self):
        """Snapping a tiny frame to a big table entry must not collapse
        the banding below one band per worker."""
        ex = TileExecutor(workers=2)
        assert ex._n_bands(32, "bm", (32, 48)) >= 2
