"""The asvlint dataflow core: CFG shapes, fixpoint solving, summaries.

Three layers, bottom-up:

* **CFG golden tests** — ``build_cfg`` topologies rendered through
  ``describe()`` are pinned for the structured statements the
  flow-sensitive rules rely on (branches, loops, try/finally, with),
  plus targeted edge assertions (back edges, break, exception edges
  into the raise exit).
* **Solver tests** — ``solve`` reaches a fixpoint on loops, honours
  edge-sensitive transfer, and *terminates by widening* on a
  deliberately pathological domain whose chains never converge.
* **Summaries** — the static ``StencilSpec.halo_value`` twin is pinned
  against the runtime ``repro.parallel.tiles.Stencil.halo`` across the
  sampled parameter grids (the two implementations are intentionally
  independent: the linter must never import the code it analyses), and
  the footprint deriver reproduces the exact halos of the real kernels.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.parallel.tiles import Stencil
from tools.asvlint.cfg import build_cfg, may_raise
from tools.asvlint.dataflow import BOTTOM, Domain, solve
from tools.asvlint.summaries import (
    INFINITE,
    FootprintDeriver,
    ModuleSummary,
    ProjectIndex,
    StencilSpec,
    parse_stencil_expr,
    sample_envs,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def fn_of(source):
    return ast.parse(textwrap.dedent(source).strip("\n")).body[0]


def cfg_of(source):
    return build_cfg(fn_of(source))


# ----------------------------------------------------------------------
# CFG golden topologies
# ----------------------------------------------------------------------
def test_cfg_if_else_golden():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    assert cfg.describe() == [
        "0 entry -> [3:next]",
        "1 exit -> []",
        "2 raise -> []",
        "3 If@2 -> [4:true, 5:false]",
        "4 Assign@3 -> [6:next]",
        "5 Assign@5 -> [6:next]",
        "6 Return@6 -> [1:return]",
    ]


def test_cfg_while_loop_golden():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    assert cfg.describe() == [
        "0 entry -> [3:next]",
        "1 exit -> []",
        "2 raise -> []",
        "3 While@2 -> [4:true, 5:false]",
        "4 AugAssign@3 -> [3:back]",
        "5 Return@4 -> [1:return]",
    ]


def test_cfg_try_finally_golden():
    cfg = cfg_of(
        """
        def f(x):
            try:
                risky(x)
            finally:
                cleanup()
            return x
        """
    )
    assert cfg.describe() == [
        "0 entry -> [4:next]",
        "1 exit -> []",
        "2 raise -> []",
        "3 finally@5 -> [5:next]",
        "4 Expr@3 -> [3:except, 3:next]",
        "5 Expr@5 -> [2:except, 2:reraise, 6:next]",
        "6 Return@6 -> [1:return]",
    ]


def test_cfg_for_break_and_orelse_edges():
    cfg = cfg_of(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
                use(x)
            else:
                tail()
            return 1
        """
    )
    fn = cfg.nodes[3].stmt
    assert isinstance(fn, ast.For)
    # the loop body's last statement loops back to the header
    back_edges = [(u, v) for u in cfg.succ for v, lbl in cfg.succ[u] if lbl == "back"]
    assert back_edges
    # break jumps past the orelse straight to the statement after the loop
    break_idx = next(
        n.idx for n in cfg.nodes if isinstance(n.stmt, ast.Break)
    )
    ret_idx = next(n.idx for n in cfg.nodes if isinstance(n.stmt, ast.Return))
    assert (ret_idx, "break") in cfg.succ[break_idx]
    # the orelse tail() also flows to the return, via the loop's false edge
    tail_idx = next(
        n.idx
        for n in cfg.nodes
        if isinstance(n.stmt, ast.Expr) and "tail" in ast.unparse(n.stmt)
    )
    assert (tail_idx, "false") in [
        (v, lbl) for v, lbl in cfg.succ[3]
    ] or any(lbl == "false" for _, lbl in cfg.pred[tail_idx])


def test_cfg_uncaught_exception_reaches_raise_exit():
    cfg = cfg_of(
        """
        def f(x):
            y = compute(x)
            return y
        """
    )
    call_idx = next(n.idx for n in cfg.nodes if isinstance(n.stmt, ast.Assign))
    assert (cfg.raise_exit, "except") in cfg.succ[call_idx]
    # a pure assignment has no exception edge
    pure = cfg_of("def f(x):\n    y = x\n    return y\n")
    assign_idx = next(n.idx for n in pure.nodes if isinstance(n.stmt, ast.Assign))
    assert all(lbl != "except" for _, lbl in pure.succ[assign_idx])


def test_cfg_handler_matches_and_propagates():
    cfg = cfg_of(
        """
        def f(x):
            try:
                risky(x)
        # asvlint: disable=ASV001  (fixture comment, not suppression)
            except ValueError:
                fallback()
            return x
        """
    )
    dispatch = next(n for n in cfg.nodes if n.label.startswith("except-dispatch"))
    # the dispatch reaches both the handler body and keeps propagating
    labels = [lbl for _, lbl in cfg.succ[dispatch.idx]]
    assert labels.count("except") >= 2 or (
        "except" in labels and len(cfg.succ[dispatch.idx]) >= 2
    )
    assert (cfg.raise_exit, "except") in cfg.succ[dispatch.idx]


def test_cfg_reachability_respects_avoid():
    cfg = cfg_of(
        """
        def f(x):
            a = init()
            use(a)
            a.close()
            late(a)
        """
    )
    close_idx = next(
        n.idx
        for n in cfg.nodes
        if n.stmt is not None and "close" in ast.unparse(n.stmt)
    )
    late_idx = next(
        n.idx
        for n in cfg.nodes
        if n.stmt is not None and "late" in ast.unparse(n.stmt)
    )
    assert late_idx in cfg.reachable(cfg.entry)
    assert late_idx not in cfg.reachable(cfg.entry, avoid=[close_idx])


def test_may_raise_treats_nested_defs_as_opaque():
    assert may_raise(ast.parse("x = f()").body[0])
    assert not may_raise(ast.parse("x = y + 1").body[0])
    nested = ast.parse("def g():\n    return f()\n").body[0]
    assert not may_raise(nested)


# ----------------------------------------------------------------------
# the fixpoint solver
# ----------------------------------------------------------------------
class _GenKill(Domain):
    """may-be-set of single-letter facts: `gen_X()` adds, `kill_X()` removes."""

    def initial(self):
        return frozenset()

    def top(self):
        return frozenset("abcdefghijklmnopqrstuvwxyz")

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        if node.stmt is None:
            return state
        text = ast.unparse(node.stmt)
        for mark in ("gen_", "kill_"):
            pos = text.find(mark)
            if pos >= 0:
                fact = text[pos + len(mark)]
                state = state | {fact} if mark == "gen_" else state - {fact}
        return state


def test_solver_straight_line_and_branch_join():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                gen_a()
            else:
                gen_b()
            after()
        """
    )
    states = solve(cfg, _GenKill())
    after_idx = next(
        n.idx
        for n in cfg.nodes
        if n.stmt is not None and "after" in ast.unparse(n.stmt)
    )
    # both branch facts merge at the join point
    assert states[after_idx] == frozenset("ab")
    assert states[cfg.entry] == frozenset()


def test_solver_loop_reaches_fixpoint():
    cfg = cfg_of(
        """
        def f(xs):
            for x in xs:
                gen_a()
            done()
        """
    )
    states = solve(cfg, _GenKill())
    # the loop header sees 'a' flowing around the back edge
    header_idx = next(n.idx for n in cfg.nodes if isinstance(n.stmt, ast.For))
    done_idx = next(
        n.idx
        for n in cfg.nodes
        if n.stmt is not None and "done" in ast.unparse(n.stmt)
    )
    assert "a" in states[header_idx]
    assert "a" in states[done_idx]


def test_solver_unreachable_code_stays_bottom():
    cfg = cfg_of(
        """
        def f():
            return 1
            gen_a()
        """
    )
    states = solve(cfg, _GenKill())
    dead_idx = next(
        n.idx
        for n in cfg.nodes
        if n.stmt is not None and "gen_a" in ast.unparse(n.stmt)
    )
    assert states[dead_idx] is BOTTOM


class _Counting(Domain):
    """Pathological: every loop iteration grows the state, never converging
    without widening (an infinite ascending chain of integers)."""

    def initial(self):
        return 0

    def top(self):
        return float("inf")

    def join(self, a, b):
        return max(a, b)

    def transfer(self, node, state):
        if node.stmt is not None and isinstance(node.stmt, ast.AugAssign):
            return state + 1
        return state


def test_solver_widens_nonconverging_domain_to_top():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    states = solve(cfg, _Counting(), max_visits=8)
    ret_idx = next(n.idx for n in cfg.nodes if isinstance(n.stmt, ast.Return))
    # without widening this would spin forever; with it the loop exit
    # degrades to top and the solve terminates
    assert states[ret_idx] == float("inf")


def test_solver_edge_sensitive_transfer():
    class NonZero(Domain):
        def initial(self):
            return "maybe"

        def top(self):
            return "maybe"

        def join(self, a, b):
            return a if a == b else "maybe"

        def transfer_edge(self, node, label, state):
            if isinstance(node.stmt, ast.While) and label == "false":
                return "zero"
            return state

    cfg = cfg_of(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    states = solve(cfg, NonZero())
    ret_idx = next(n.idx for n in cfg.nodes if isinstance(n.stmt, ast.Return))
    assert states[ret_idx] == "zero"


# ----------------------------------------------------------------------
# summaries: the static Stencil twin vs the runtime Stencil
# ----------------------------------------------------------------------
_SPEC_GRID = [
    (StencilSpec(kind="pointwise"), Stencil.pointwise(), [{}]),
    (StencilSpec(kind="fixed", value=3), Stencil.fixed(3), [{}]),
    (
        StencilSpec(kind="window", param="w"),
        Stencil.window("w"),
        [{"w": v} for v in (3, 5, 9, 15, 31)],
    ),
    (
        StencilSpec(kind="radius", param="r"),
        Stencil.radius("r"),
        [{"r": v} for v in (1, 2, 4, 8)],
    ),
    (
        StencilSpec(kind="blur", param="s"),
        Stencil.blur("s"),
        [{"s": v} for v in (0.5, 1.0, 2.0, 4.0)],
    ),
    (
        StencilSpec(kind="gaussian", param="s", override="r"),
        Stencil.gaussian("s", override="r"),
        [{"s": v, "r": None} for v in (0.5, 1.0, 1.5, 2.5, 4.0)]
        + [{"s": 1.5, "r": 3}, {"s": 1.5, "r": 7}],
    ),
]


@pytest.mark.parametrize(
    "static_spec,runtime_stencil,envs",
    _SPEC_GRID,
    ids=[s.kind for s, _, _ in _SPEC_GRID],
)
def test_static_halo_matches_runtime_halo(static_spec, runtime_stencil, envs):
    # the linter-side formula must agree with the executable one for
    # every sampled environment — they are deliberately two independent
    # implementations (the linter never imports analysed code)
    for env in envs:
        assert static_spec.halo_value(env) == runtime_stencil.halo(**env), env


def test_infinite_stencils_agree_on_untileability():
    assert StencilSpec(kind="infinite").halo_value({}) == INFINITE
    assert not StencilSpec(kind="infinite").tileable
    assert not Stencil.infinite().tileable
    with pytest.raises(ValueError):
        Stencil.infinite().halo()


def test_sample_envs_cover_declared_params():
    spec = StencilSpec(kind="gaussian", param="sigma", override="radius")
    envs = sample_envs(spec)
    assert any(env.get("radius") is None for env in envs)
    assert any(isinstance(env.get("radius"), int) for env in envs)
    for env in envs:
        assert "sigma" in env


def test_parse_stencil_expr_follows_constants_across_imports():
    index = ProjectIndex.for_root(REPO_ROOT)
    executor = index.module("repro.parallel.executor")
    assert executor is not None
    # CENSUS_STENCIL is *imported* into executor.py from stereo/census.py
    expr = ast.parse("CENSUS_STENCIL").body[0].value
    spec = parse_stencil_expr(expr, executor, index)
    assert spec == StencilSpec(kind="window", param="window")


# ----------------------------------------------------------------------
# the footprint deriver on the real kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "dotted,fn_name,env,expected",
    [
        ("repro.stereo.block_matching", "block_match", {"block_size": 9}, 4),
        ("repro.stereo.block_matching", "sad_cost_volume", {"block_size": 15}, 7),
        ("repro.stereo.census", "census_block_match", {"window": 5}, 2),
        ("repro.flow.farneback", "flow_iteration", {"window_sigma": 4.0}, 16),
        (
            "repro.flow.farneback",
            "poly_expansion",
            {"sigma": 1.5, "radius": None},
            4,
        ),
        (
            "repro.flow.farneback",
            "poly_expansion",
            {"sigma": 1.5, "radius": 7},
            7,
        ),
    ],
)
def test_deriver_reproduces_real_kernel_footprints(dotted, fn_name, env, expected):
    index = ProjectIndex.for_root(REPO_ROOT)
    module = index.module(dotted)
    assert module is not None
    fn = module.functions[fn_name]
    derived = FootprintDeriver(index).reach(fn, module, env)
    assert derived == expected


def test_deriver_is_a_lower_bound_on_opaque_code():
    # an unresolvable helper contributes nothing rather than guessing
    source = textwrap.dedent(
        """
        import numpy as np
        from scipy import ndimage

        def mystery(img, helper):
            taps = helper(img)
            return ndimage.correlate1d(img, taps, axis=0)
        """
    )
    module = ModuleSummary(ast.parse(source), name="fixture")
    index = ProjectIndex.for_root(REPO_ROOT)
    fn = module.functions["mystery"]
    assert FootprintDeriver(index).reach(fn, module, {}) == 0


def test_deriver_vertical_axis_selection():
    source = textwrap.dedent(
        """
        import numpy as np
        from scipy import ndimage

        def vertical(img, taps):
            return ndimage.correlate1d(img, np.full(9, 1.0), axis=0)

        def horizontal(img, taps):
            return ndimage.correlate1d(img, np.full(9, 1.0), axis=-1)
        """
    )
    module = ModuleSummary(ast.parse(source), name="fixture")
    index = ProjectIndex.for_root(REPO_ROOT)
    deriver = FootprintDeriver(index)
    assert deriver.reach(module.functions["vertical"], module, {}) == 4
    assert deriver.reach(module.functions["horizontal"], module, {}) == 0
