"""Tests for the quality-aware serving layer (``repro.pipeline.quality``).

Covers the probe itself (matcher selection, sampling, disposition
replay), the per-frame disposition record every scheduler now emits,
the ISM degradation contract (non-key EPE grows with distance from
the key frame; a ``shed``-forced re-key resets it), and the quality
threading through ``StreamEngine`` / ``ClusterEngine`` reports.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.cluster import ClusterEngine, format_cluster_quality
from repro.datasets.scenes import SceneObject, StereoScene
from repro.pipeline import (
    FrameCoster,
    FrameStream,
    QualityProbe,
    StreamEngine,
    format_quality_report,
    format_report,
    sceneflow_stream,
)

SIZE = (52, 72)


def translating_stream(n_frames=7, name="translate", **kwargs):
    """Two textured layers translating over a panning background —
    steady motion, so ISM propagation error accumulates smoothly."""
    objects = [
        SceneObject(center=(20.0, 18.0), size=(16, 14), disparity=10.0,
                    velocity=(0.0, 2.0), texture_seed=1),
        SceneObject(center=(34.0, 44.0), size=(14, 16), disparity=6.0,
                    velocity=(1.0, -1.5), texture_seed=2),
    ]
    scene = StereoScene(SIZE[0], SIZE[1], objects, background_disparity=2.0,
                        background_velocity=(0.0, 1.0), seed=5)
    return FrameStream(
        name, size=SIZE, n_frames=n_frames,
        frame_source=lambda: iter(scene.sequence(n_frames)), **kwargs,
    )


@pytest.fixture(scope="module")
def probe():
    return QualityProbe(matcher="bm", max_disp=16)


class TestProbeConfig:
    def test_unknown_matcher_rejected(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            QualityProbe(matcher="orb")

    @pytest.mark.parametrize("kwargs", [
        dict(max_disp=0), dict(max_frames=0), dict(sample=0.0),
        dict(sample=1.5),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QualityProbe(**kwargs)

    def test_all_matchers_score_a_frame(self):
        stream = sceneflow_stream(seed=3, size=(32, 48), n_frames=2,
                                  max_disp=16)
        for matcher in ("bm", "census", "sgm"):
            q = QualityProbe(matcher=matcher, max_disp=16).score_stream(
                stream, ["key", "nonkey"]
            )
            assert q.matcher == matcher
            assert q.n_frames == 2
            assert 0.0 <= q.bad_pixel_rate <= 1.0
            assert q.epe_px >= 0.0


class TestDispositionReplay:
    def test_score_plan_follows_policy(self, probe):
        q = probe.score_plan(translating_stream(6, pw=3))
        assert [f.disposition for f in q.frames] == [
            "key", "nonkey", "nonkey", "key", "nonkey", "nonkey"
        ]

    def test_drop_before_key_rejected(self, probe):
        with pytest.raises(ValueError, match="key frame"):
            probe.score_stream(translating_stream(2), ["drop", "key"])

    def test_nonkey_before_key_rejected(self, probe):
        with pytest.raises(ValueError, match="non-key frame"):
            probe.score_stream(translating_stream(2), ["nonkey", "key"])

    def test_nonkey_right_after_drop_rejected(self, probe):
        """A drop breaks the ISM chain; propagating across the gap
        would score flow the pipeline never ran."""
        with pytest.raises(ValueError, match="after a drop"):
            probe.score_stream(
                translating_stream(4), ["key", "drop", "nonkey", "key"]
            )

    def test_forced_key_syncs_stateful_policies(self):
        """ISM.step(is_key=True) must reset a stateful policy's key
        clock, mirroring plan_keys' sync_forced_key contract."""
        from repro.core import ISM
        from repro.core.keyframe import MotionAdaptivePolicy

        policy = MotionAdaptivePolicy(max_window=4)
        ism = ISM(lambda f: f.disparity, policy=policy)
        frames = list(translating_stream(4).frames())
        ism.step(frames[0])                    # frame 0: policy key
        ism.step(frames[1])                    # policy non-key
        assert policy._since_key == 1
        ism.step(frames[2], is_key=True)       # forced re-key
        assert policy._since_key == 0          # clock resynced
        _, is_key = ism.step(frames[3])        # back to policy-driven
        assert not is_key                      # 1 frame after the key

    def test_max_frames_truncates(self):
        probe = QualityProbe(matcher="bm", max_disp=16, max_frames=3)
        q = probe.score_stream(translating_stream(6), ["key"] + ["nonkey"] * 5)
        assert q.n_frames == 3

    def test_stale_frames_scored_against_last_served(self, probe):
        q = probe.score_stream(
            translating_stream(4), ["key", "nonkey", "drop", "key"]
        )
        assert q.n_stale == 1
        # the stale score is strictly worse than the frame it reuses
        served = {f.index: f for f in q.frames if f.disposition != "drop"}
        stale = next(f for f in q.frames if f.disposition == "drop")
        assert stale.epe_px > served[1].epe_px

    def test_deterministic(self, probe):
        a = probe.score_stream(translating_stream(4), ["key"] + ["nonkey"] * 3)
        b = probe.score_stream(translating_stream(4), ["key"] + ["nonkey"] * 3)
        assert a == b


class TestIsmDegradation:
    """The paper's quality/speed trade, measured: propagation error
    grows with distance from the key frame, and a forced re-key (what
    ``shed`` does after a drop) resets it."""

    def test_nonkey_epe_grows_with_propagation_distance(self, probe):
        q = probe.score_stream(
            translating_stream(7), ["key"] + ["nonkey"] * 6
        )
        epe = [f.epe_px for f in q.frames]
        # monotone growth along the chain (tiny slack for flow noise)
        for earlier, later in zip(epe[1:], epe[2:]):
            assert later >= earlier - 0.02
        assert epe[-1] > epe[1] + 0.1   # the growth is real, not noise
        assert q.nonkey_epe_px > q.key_epe_px

    def test_shed_rekey_resets_degradation(self, probe):
        q = probe.score_stream(
            translating_stream(7),
            ["key", "nonkey", "nonkey", "nonkey", "drop", "key", "nonkey"],
        )
        by_index = {f.index: f for f in q.frames}
        drifted = by_index[3]       # deepest into the broken chain
        rekeyed = by_index[5]       # the forced key after the drop
        assert rekeyed.epe_px < drifted.epe_px
        # and the stale dropped frame is the worst of the run
        assert by_index[4].epe_px == max(f.epe_px for f in q.frames)


class TestSchedulerDispositions:
    """Every scheduler now records what happened to each offered frame."""

    def _serve(self, scheduler, streams):
        coster = FrameCoster(get_backend("systolic"))
        return coster.serve(streams, scheduler=scheduler)

    def _overloaded(self):
        return [
            FrameStream(f"cam{i}", size=(68, 120), n_frames=8, fps=120.0,
                        mode="baseline", pw=2, deadline_s=0.004)
            for i in range(4)
        ]

    @pytest.mark.parametrize("scheduler", ["fifo", "edf", "priority", "shed"])
    def test_dispositions_account_for_every_offered_frame(self, scheduler):
        streams = self._overloaded()
        out = self._serve(scheduler, streams)
        assert len(out.dispositions) == len(streams)
        for si, record in enumerate(out.dispositions):
            assert len(record) == streams[si].n_frames
            assert record[0] == "key"
            served = [d for d in record if d != "drop"]
            assert len(served) == len(out.latencies_s[si])
            assert record.count("drop") == out.dropped_frames[si]
            assert record.count("key") == out.key_counts[si]

    def test_shed_rekeys_after_every_drop(self):
        out = self._serve("shed", self._overloaded())
        assert sum(out.dropped_frames) > 0
        for record in out.dispositions:
            pending_rekey = False
            for what in record:
                if pending_rekey and what != "drop":
                    assert what == "key"
                    pending_rekey = False
                if what == "drop":
                    pending_rekey = True

    def test_nonshedding_schedulers_share_one_disposition_record(self):
        streams = self._overloaded()
        fifo = self._serve("fifo", streams)
        edf = self._serve("edf", streams)
        # edf reorders *between* streams but serves the same plan, so
        # depth quality is identical by construction
        assert fifo.dispositions == edf.dispositions


class TestEngineQuality:
    def test_cost_only_streams_are_unprobed(self, probe):
        report = StreamEngine("gpu", quality=probe).run(
            [FrameStream("cam", size=(68, 120), n_frames=4)]
        )
        assert report.streams[0].quality is None
        assert report.bad_pixel_rate is None and report.epe_px is None
        with pytest.raises(ValueError, match="no quality samples"):
            format_quality_report(report)

    def test_no_probe_means_no_quality(self):
        report = StreamEngine("gpu").run(
            [sceneflow_stream(seed=3, size=(32, 48), n_frames=2,
                              max_disp=16, mode="baseline")]
        )
        assert report.streams[0].quality is None
        assert "bad px %" not in format_report(report)

    def test_quality_true_uses_default_probe(self):
        engine = StreamEngine("gpu", quality=True)
        assert engine.quality.matcher_name == "bm"

    def test_probed_report_carries_accuracy(self, probe):
        report = StreamEngine("gpu", quality=probe).run(
            [translating_stream(4, mode="baseline"),
             FrameStream("costonly", size=(68, 120), n_frames=4)]
        )
        stats = report.streams[0]
        assert stats.quality is not None
        assert stats.quality.n_frames == 4
        assert report.bad_pixel_rate == stats.bad_pixel_rate
        assert report.epe_px == stats.epe_px
        assert "bad px %" in format_report(report)
        assert "stale epe" in format_quality_report(report)

    def test_sampling_probes_a_subset(self):
        probe = QualityProbe(matcher="bm", max_disp=16, sample=0.5)
        streams = [
            sceneflow_stream(seed=i, name=f"cam{i}", size=(32, 48),
                             n_frames=2, max_disp=16, mode="baseline")
            for i in range(4)
        ]
        report = StreamEngine("gpu", quality=probe).run(streams)
        probed = report.probed_streams
        assert len(probed) == 2
        # deterministic: a fresh engine probes the same subset
        again = StreamEngine("gpu", quality=probe).run(streams)
        assert [s.stream for s in again.probed_streams] == [
            s.stream for s in probed
        ]

    def test_latencies_unchanged_by_probing(self, probe):
        streams = [translating_stream(4, mode="baseline")]
        plain = StreamEngine("gpu").run(streams)
        probed = StreamEngine("gpu", quality=probe).run(streams)
        assert [s.p99_ms for s in plain.streams] == [
            s.p99_ms for s in probed.streams
        ]
        assert plain.makespan_s == probed.makespan_s


class TestClusterQuality:
    def test_fleet_report_aggregates_accuracy(self, probe):
        streams = [
            translating_stream(4, name=f"cam{i}", mode="baseline")
            for i in range(2)
        ]
        run = ClusterEngine(["gpu", "gpu"], quality=probe).run(streams)
        assert all(s.quality is not None for s in run.stream_stats)
        assert run.epe_px > 0.0
        assert "epe px" in format_cluster_quality(run)

    def test_shed_cluster_scores_stale_frames(self):
        probe = QualityProbe(matcher="bm", max_disp=16)
        streams = [
            sceneflow_stream(seed=i, name=f"cam{i}", size=(48, 64),
                             n_frames=6, max_disp=16, fps=120.0,
                             mode="baseline", pw=2, deadline_s=0.004)
            for i in range(4)
        ]
        run = ClusterEngine(["systolic"], scheduler="shed",
                            quality=probe).run(streams)
        assert run.drop_rate > 0.0
        assert any(s.quality.n_stale for s in run.probed_streams)
        # stale frames are scored, so every offered frame is accounted
        for s in run.probed_streams:
            assert s.quality.n_frames == 6
