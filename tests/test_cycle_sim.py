"""Validation of the analytic latency model against the cycle-level
systolic simulation (the reproduction's SCALE-Sim stand-in)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import ASV_BASE, simulate_conv_cycles, utilization
from repro.nn.workload import ConvSpec


def spec(cin=64, cout=64, k=3, h=32, w=32, stride=1):
    return ConvSpec("c", cin, cout, (k, k), (h, w), stride, min(1, k - 1))


class TestCycleSim:
    def test_macs_match_spec(self):
        s = spec()
        sim = simulate_conv_cycles(s, ASV_BASE)
        assert sim.macs == s.macs

    def test_cycles_at_least_ideal(self):
        """The simulation can never beat ceil(MACs / PEs)."""
        s = spec()
        sim = simulate_conv_cycles(s, ASV_BASE)
        assert sim.cycles >= math.ceil(s.macs / ASV_BASE.pe_count)

    def test_deconv_rejected(self):
        d = ConvSpec("d", 8, 8, (4, 4), (8, 8), 2, 1, deconv=True)
        with pytest.raises(ValueError):
            simulate_conv_cycles(d, ASV_BASE)

    def test_repeat_scales(self):
        one = simulate_conv_cycles(spec(), ASV_BASE)
        three = simulate_conv_cycles(spec().scaled(repeat=3), ASV_BASE)
        assert three.cycles == 3 * one.cycles

    def test_pass_count(self):
        """24x24 array: 64x3x3=576 rows -> 1 row group, 64 filters ->
        3 column groups."""
        sim = simulate_conv_cycles(spec(cin=64, cout=64, k=3), ASV_BASE)
        assert sim.passes == math.ceil(576 / 24) * math.ceil(64 / 24)


class TestAnalyticModelValidation:
    """The Eq. 6 idealisation — compute time = ceil(MACs/PEs) — must be
    within a few percent of the simulated dataflow for the layer shapes
    the networks actually contain."""

    @pytest.mark.parametrize(
        "cin,cout,k,h,w",
        [
            (64, 128, 5, 135, 240),   # DispNet conv2-scale
            (256, 256, 3, 68, 120),   # conv3_1-scale
            (512, 512, 3, 34, 60),    # conv4_1-scale
            (128, 64, 2, 136, 240),   # transformed-deconv sub-conv scale
        ],
    )
    def test_utilization_high_on_network_layers(self, cin, cout, k, h, w):
        s = spec(cin=cin, cout=cout, k=k, h=h, w=w)
        u = utilization(s, ASV_BASE)
        assert u > 0.85, f"utilization {u:.3f} too far from the Eq. 6 ideal"

    def test_utilization_degrades_gracefully_on_tiny_layers(self):
        """Few output pixels -> fills dominate; the analytic model is
        optimistic there, which the sensitivity analysis tolerates
        because such layers contribute negligible time."""
        tiny = spec(cin=8, cout=8, k=1, h=4, w=4)
        assert 0.005 < utilization(tiny, ASV_BASE) < 0.9

    @settings(max_examples=20, deadline=None)
    @given(
        cin=st.sampled_from([16, 64, 256]),
        cout=st.sampled_from([16, 64, 256]),
        k=st.sampled_from([1, 3, 5]),
        hw_=st.sampled_from([(34, 60), (68, 120), (135, 240)]),
    )
    def test_utilization_bounded(self, cin, cout, k, hw_):
        u = utilization(spec(cin=cin, cout=cout, k=k, h=hw_[0], w=hw_[1]),
                        ASV_BASE)
        assert 0.0 < u <= 1.0
