"""Tests for the depth pipeline API and schedule serialization."""

import json

import numpy as np
import pytest

from repro.core.depth import DepthEstimator, DepthFrame
from repro.core.ism import ISMConfig
from repro.datasets import sceneflow_scene
from repro.deconv import lower_spec, optimize_layer
from repro.hw import ASV_BASE, Schedule, SystolicModel
from repro.models.proxy import StereoDNNProxy
from repro.nn.workload import ConvSpec
from repro.stereo.triangulate import StereoCamera

RIG = StereoCamera(baseline_m=0.54, focal_length_m=4.0e-3, pixel_size_m=8.0e-6)


class TestDepthEstimator:
    @pytest.fixture(scope="class")
    def video(self):
        return sceneflow_scene(17, size=(120, 200), max_disp=40,
                               max_speed=1.5).sequence(3)

    def test_single_frame(self, video):
        est = DepthEstimator(lambda f: f.disparity, camera=RIG)
        out = est.process_frame(video[0])
        assert isinstance(out, DepthFrame)
        assert out.depth_m.shape == video[0].disparity.shape
        assert out.is_key_frame

    def test_depth_matches_triangulation(self, video):
        est = DepthEstimator(lambda f: f.disparity, camera=RIG,
                             max_depth_m=1e9)
        out = est.process_frame(video[0])
        gt = RIG.depth_from_disparity(video[0].disparity)
        assert np.allclose(out.depth_m, gt)

    def test_max_depth_clamped(self, video):
        est = DepthEstimator(lambda f: f.disparity, camera=RIG,
                             max_depth_m=50.0)
        out = est.process_frame(video[0])
        assert out.depth_m.max() <= 50.0

    def test_sequence_without_ism_keys_everything(self, video):
        est = DepthEstimator(lambda f: f.disparity, camera=RIG)
        outs = est.process_sequence(video)
        assert all(o.is_key_frame for o in outs)

    def test_sequence_with_ism_propagates(self, video):
        est = DepthEstimator(
            StereoDNNProxy("DispNet", seed=0),
            camera=RIG,
            ism_config=ISMConfig(propagation_window=3),
        )
        outs = est.process_sequence(video)
        assert [o.is_key_frame for o in outs] == [True, False, False]

    def test_nearest_distance(self, video):
        est = DepthEstimator(lambda f: f.disparity, camera=RIG)
        out = est.process_frame(video[0])
        near = out.nearest_m()
        gt_near = float(np.percentile(
            RIG.depth_from_disparity(video[0].disparity), 2
        ))
        assert near == pytest.approx(gt_near, rel=0.05)

    def test_nearest_on_empty_region(self):
        frame = DepthFrame(
            disparity=np.zeros((4, 4)),
            depth_m=np.full((4, 4), np.inf),
            is_key_frame=True,
        )
        assert frame.nearest_m() == float("inf")


class TestScheduleSerialization:
    def _schedule(self):
        spec = ConvSpec("d", 64, 32, (4, 4), (34, 60), 2, 1, deconv=True)
        (group,) = lower_spec(spec)
        return optimize_layer(group, ASV_BASE)

    def test_roundtrip_identity(self):
        sched = self._schedule()
        clone = Schedule.from_dict(sched.to_dict())
        assert clone.layer == sched.layer
        assert clone.rounds == sched.rounds
        assert clone.counts == sched.counts

    def test_json_serialisable(self):
        sched = self._schedule()
        text = json.dumps(sched.to_dict())
        clone = Schedule.from_dict(json.loads(text))
        assert clone.total_macs == sched.total_macs

    def test_roundtrip_same_hardware_result(self):
        model = SystolicModel(ASV_BASE)
        sched = self._schedule()
        clone = Schedule.from_dict(sched.to_dict())
        a = model.run_schedule(sched)
        b = model.run_schedule(clone)
        assert (a.cycles, a.dram_bytes, a.energy_j) == (
            b.cycles, b.dram_bytes, b.energy_j
        )

    def test_clone_still_validates(self):
        sched = self._schedule()
        Schedule.from_dict(sched.to_dict()).validate(ASV_BASE)
