"""Tests for the calibrated stereo-DNN accuracy proxies."""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.models.proxy import DNN_PROFILES, StereoDNNProxy
from repro.stereo import error_rate


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(3, size=(135, 240)).render(0)


class TestProfiles:
    def test_four_profiles(self):
        assert set(DNN_PROFILES) == {"DispNet", "FlowNetC", "GC-Net", "PSMNet"}

    def test_lookup_by_string(self, frame):
        proxy = StereoDNNProxy("PSMNet")
        assert proxy.profile.name == "PSMNet"

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            StereoDNNProxy("UnknownNet")


class TestErrorStructure:
    def test_output_shape_and_range(self, frame):
        disp = StereoDNNProxy("DispNet", seed=0)(frame)
        assert disp.shape == frame.disparity.shape
        assert (disp >= 0).all()

    def test_deterministic_per_seed(self, frame):
        a = StereoDNNProxy("DispNet", seed=5)(frame)
        b = StereoDNNProxy("DispNet", seed=5)(frame)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, frame):
        a = StereoDNNProxy("DispNet", seed=1)(frame)
        b = StereoDNNProxy("DispNet", seed=2)(frame)
        assert not np.array_equal(a, b)

    def test_errors_concentrate_at_boundaries(self, frame):
        from scipy import ndimage

        disp = StereoDNNProxy("DispNet", seed=0)(frame)
        err = np.abs(disp - frame.disparity) >= 3.0
        grad = np.hypot(*np.gradient(frame.disparity))
        band = ndimage.binary_dilation(grad > 1.0, iterations=3)
        # the error rate inside the discontinuity band must dominate
        assert err[band].mean() > 3.0 * max(err[~band].mean(), 1e-4)

    def test_interior_mostly_subpixel(self, frame):
        from scipy import ndimage

        disp = StereoDNNProxy("PSMNet", seed=0)(frame)
        grad = np.hypot(*np.gradient(frame.disparity))
        interior = ~ndimage.binary_dilation(grad > 1.0, iterations=4)
        abs_err = np.abs(disp - frame.disparity)[interior]
        assert np.median(abs_err) < 0.5


class TestCalibration:
    def _mean_error(self, name, n=4):
        errs = []
        for s in range(n):
            f = sceneflow_scene(s, size=(135, 240)).render(0)
            errs.append(error_rate(StereoDNNProxy(name, seed=s)(f), f.disparity))
        return float(np.mean(errs))

    def test_accuracy_ordering_matches_publications(self):
        """PSMNet < GC-Net < DispNet < FlowNetC (published ordering)."""
        errs = {n: self._mean_error(n) for n in DNN_PROFILES}
        assert errs["PSMNet"] < errs["GC-Net"] < errs["DispNet"] < errs["FlowNetC"]

    def test_error_rates_in_dnn_class(self):
        """All proxies land in the DNN cluster of Fig. 1 (~1-8 %),
        far below the classic matchers (~8-16 %)."""
        for name in DNN_PROFILES:
            err = self._mean_error(name)
            assert 0.5 < err < 8.5, (name, err)
