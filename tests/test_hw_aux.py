"""Tests for the comparison hardware models (Eyeriss, GPU, GANNX) and
the area/power overhead accounting."""

import pytest

from repro.hw import ASV_BASE, AreaPowerModel, EyerissModel, GannxModel
from repro.hw.gpu import JETSON_TX2, GPUModel
from repro.models import network_specs
from repro.models.gans import gan_specs
from repro.nn.workload import ConvSpec


def small_net():
    return [
        ConvSpec("c1", 3, 16, (3, 3), (64, 96), 2, 1),
        ConvSpec("d1", 16, 8, (4, 4), (32, 48), 2, 1, deconv=True, stage="DR"),
    ]


class TestEyeriss:
    def test_runs_baseline(self):
        res = EyerissModel(ASV_BASE).run_network(small_net())
        assert res.cycles > 0 and res.energy_j > 0

    def test_dct_speeds_it_up(self):
        model = EyerissModel(ASV_BASE)
        base = model.run_network(small_net(), transform=False)
        dct = model.run_network(small_net(), transform=True)
        assert dct.cycles < base.cycles
        assert dct.energy_j < base.energy_j

    def test_slower_than_systolic_on_same_resources(self):
        """Row-stationary fragmentation costs utilization relative to
        the systolic model under identical resources."""
        from repro.deconv import best_static_partition, lower_network
        from repro.hw import SystolicModel

        model = SystolicModel(ASV_BASE)
        layers = lower_network(small_net(), transform=False)
        _, scheds = best_static_partition(layers, ASV_BASE, model)
        systolic = model.run_schedules(scheds, validate=False)
        eyeriss = EyerissModel(ASV_BASE).run_network(small_net())
        assert eyeriss.cycles > systolic.cycles

    def test_layer_names_tagged(self):
        res = EyerissModel(ASV_BASE).run_network(small_net())
        assert all("[eyeriss]" in l.name for l in res.layers)


class TestGPU:
    def test_layer_roofline(self):
        spec = small_net()[0]
        secs = JETSON_TX2.layer_seconds(spec)
        compute_bound = spec.macs / (
            JETSON_TX2.peak_macs_per_sec * JETSON_TX2.kernel_efficiency
        )
        assert secs >= compute_bound

    def test_network_time_additive(self):
        specs = small_net()
        total = JETSON_TX2.network_seconds(specs)
        assert total == pytest.approx(
            sum(JETSON_TX2.layer_seconds(s) for s in specs)
        )

    def test_energy_is_power_times_time(self):
        specs = small_net()
        assert JETSON_TX2.network_energy_j(specs) == pytest.approx(
            JETSON_TX2.power_w * JETSON_TX2.network_seconds(specs)
        )

    def test_fps_ordering_matches_network_size(self):
        assert JETSON_TX2.fps(network_specs("DispNet")) > JETSON_TX2.fps(
            network_specs("GC-Net")
        )

    def test_memory_bound_layer(self):
        gpu = GPUModel(peak_macs_per_sec=1e18)  # compute is free
        spec = small_net()[0]
        moved = (spec.ifmap_elems + spec.ofmap_elems + spec.params) * 2
        assert gpu.layer_seconds(spec) == pytest.approx(
            moved / gpu.dram_bytes_per_sec
        )


class TestGannx:
    def test_beats_eyeriss_on_gans(self):
        eyeriss = EyerissModel(ASV_BASE)
        gannx = GannxModel(ASV_BASE)
        specs = gan_specs("DCGAN")
        base = eyeriss.run_network(specs)
        gx = gannx.run_network(specs)
        assert gx.cycles < base.cycles
        assert gx.energy_j < base.energy_j

    def test_skips_zero_macs(self):
        """GANNX executes the transformed (non-zero) MAC count."""
        from repro.nn.workload import total_macs

        specs = gan_specs("DCGAN")
        res = GannxModel(ASV_BASE).run_network(specs)
        assert res.macs == total_macs(specs, effective=True)


class TestAreaPower:
    def test_paper_constants(self):
        m = AreaPowerModel()
        assert m.pe_area_overhead_pct() == pytest.approx(6.3, abs=0.2)
        assert m.pe_power_overhead_pct() == pytest.approx(2.3, abs=0.1)

    def test_total_overhead_below_half_percent(self):
        report = AreaPowerModel().overhead(ASV_BASE)
        assert report.area_overhead_pct < 0.5
        assert report.power_overhead_pct < 0.5

    def test_overhead_scales_with_pe_count(self):
        m = AreaPowerModel()
        small = m.overhead(ASV_BASE.with_resources(pe_rows=8, pe_cols=8))
        large = m.overhead(ASV_BASE.with_resources(pe_rows=48, pe_cols=48))
        assert large.pe_area_um2 > small.pe_area_um2
        assert large.added_area_mm2 > small.added_area_mm2
