"""End-to-end tests of the ISM algorithm and key-frame policies."""

import numpy as np
import pytest

from repro.core import (
    ISM,
    ISMConfig,
    MotionAdaptivePolicy,
    StaticKeyFramePolicy,
    nonkey_frame_ops,
    propagate_correspondences,
    reconstruct_correspondences,
    refine_correspondences,
)
from repro.datasets import sceneflow_scene
from repro.models.proxy import StereoDNNProxy
from repro.stereo import error_rate


@pytest.fixture(scope="module")
def video():
    return sceneflow_scene(21, size=(160, 280), max_disp=40, max_speed=2.0).sequence(4)


class TestKeyFramePolicies:
    def test_static_pw2(self):
        policy = StaticKeyFramePolicy(2)
        assert [policy.is_key(i) for i in range(5)] == [
            True, False, True, False, True,
        ]

    def test_static_pw1_always_key(self):
        policy = StaticKeyFramePolicy(1)
        assert all(policy.is_key(i) for i in range(4))

    def test_static_invalid(self):
        with pytest.raises(ValueError):
            StaticKeyFramePolicy(0)

    def test_adaptive_rekeys_on_motion(self):
        policy = MotionAdaptivePolicy(max_window=10, motion_threshold=2.0)
        assert policy.is_key(0)
        calm = {"last_flow": np.zeros((4, 4, 2))}
        assert not policy.is_key(1, calm)
        fast = {"last_flow": np.full((4, 4, 2), 5.0)}
        assert policy.is_key(2, fast)

    def test_adaptive_max_window(self):
        policy = MotionAdaptivePolicy(max_window=2)
        calm = {"last_flow": np.zeros((4, 4, 2))}
        keys = [policy.is_key(i, calm) for i in range(6)]
        assert keys[0] and sum(keys) >= 3  # at least every other frame


class TestCorrespondenceSteps:
    def test_reconstruct_matches_eq2(self):
        disp = np.array([[1.0, 2.0], [0.5, 3.0]])
        left, right = reconstruct_correspondences(disp)
        assert np.allclose(right[..., 1] - left[..., 1], disp)
        assert np.allclose(right[..., 0], left[..., 0])  # y_r = y_l

    def test_propagate_zero_motion_preserves(self, video):
        frame = video[0]
        disp, known, flow = propagate_correspondences(frame, frame, frame.disparity)
        assert np.abs(flow).mean() < 0.2
        assert error_rate(disp, frame.disparity) < 5.0

    def test_propagate_tracks_motion(self, video):
        f0, f1 = video[0], video[1]
        disp, _, _ = propagate_correspondences(f0, f1, f0.disparity)
        # propagated estimate must be much closer to the new ground
        # truth than just reusing the old disparity naively... at least
        # it must be a usable initialisation
        assert error_rate(disp, f1.disparity) < 15.0

    def test_refine_improves_initialisation(self, video):
        f1 = video[1]
        rng = np.random.default_rng(0)
        rough = f1.disparity + rng.normal(0, 1.0, f1.shape)
        refined = refine_correspondences(f1, rough)
        assert error_rate(refined, f1.disparity) <= error_rate(
            rough, f1.disparity
        ) + 2.0


class TestISMPipeline:
    def test_oracle_dnn_small_loss(self, video):
        """With a perfect key-frame oracle, non-key frames must stay
        accurate: the propagation + refinement pipeline works."""
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        result = ism.run_sequence(video)
        assert result.key_frames == [True, False, False, False]
        errors = [
            error_rate(d, f.disparity) for d, f in zip(result.disparities, video)
        ]
        assert errors[0] < 1e-9  # oracle on the key frame
        assert all(e < 12.0 for e in errors[1:])

    def test_pw2_tracks_dnn_accuracy(self, video):
        proxy = StereoDNNProxy("DispNet", seed=0)
        dnn_err = np.mean(
            [error_rate(StereoDNNProxy("DispNet", seed=0)(f), f.disparity)
             for f in video]
        )
        ism = ISM(dnn=proxy, config=ISMConfig(propagation_window=2))
        result = ism.run_sequence(video)
        ism_err = np.mean(
            [error_rate(d, f.disparity) for d, f in zip(result.disparities, video)]
        )
        # the paper's Fig. 9: PW-2 retains DNN-level accuracy
        assert abs(ism_err - dnn_err) < 3.0

    def test_pw1_equals_dnn_every_frame(self, video):
        calls = []
        def dnn(frame):
            calls.append(1)
            return frame.disparity
        ism = ISM(dnn=dnn, config=ISMConfig(propagation_window=1))
        result = ism.run_sequence(video)
        assert len(calls) == len(video)
        assert all(result.key_frames)

    def test_key_frame_count_matches_pw(self, video):
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        result = ism.run_sequence(video)
        assert result.n_key_frames == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ISMConfig(propagation_window=0)
        with pytest.raises(ValueError):
            ISMConfig(search_radius=0)


class TestNonKeyOps:
    def test_orders_of_magnitude_cheaper_than_dnn(self):
        """Sec. 3.3: non-key frames are 10^2-10^4x cheaper than DNNs."""
        from repro.models import network_specs
        from repro.nn.workload import total_macs

        ops = nonkey_frame_ops(540, 960)["total"]
        for net in ("DispNet", "FlowNetC", "GC-Net", "PSMNet"):
            dnn = total_macs(network_specs(net))
            assert 10 < dnn / ops < 100_000

    def test_components_sum(self):
        parts = nonkey_frame_ops(100, 200)
        assert parts["total"] == (
            parts["motion_estimation"]
            + parts["correspondence_search"]
            + parts["bookkeeping"]
        )


class TestClassicBackend:
    def test_ism_accepts_classic_matcher_as_keyframe_engine(self, video):
        """ISM is agnostic to the key-frame matcher: an all-classic
        configuration (SGM on key frames) runs end to end."""
        from repro.stereo import sgm

        ism = ISM(
            dnn=lambda f: sgm(f.left, f.right, 48),
            config=ISMConfig(propagation_window=3),
        )
        result = ism.run_sequence(video[:3])
        assert result.key_frames == [True, False, False]
        errs = [
            error_rate(d, f.disparity)
            for d, f in zip(result.disparities, video)
        ]
        assert all(e < 25.0 for e in errs)


class TestOnlineAPI:
    def test_step_matches_run_sequence(self, video):
        """The streaming API and the batch API are the same pipeline."""
        proxy = StereoDNNProxy("DispNet", seed=3)
        batch = ISM(dnn=proxy, config=ISMConfig(propagation_window=2))
        batch_result = batch.run_sequence(video)

        online = ISM(
            dnn=StereoDNNProxy("DispNet", seed=3),
            config=ISMConfig(propagation_window=2),
        )
        for i, frame in enumerate(video):
            disp, is_key = online.step(frame)
            assert is_key == batch_result.key_frames[i]
            assert np.allclose(disp, batch_result.disparities[i])

    def test_reset_restarts_keying(self, video):
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        _, key0 = ism.step(video[0])
        _, key1 = ism.step(video[1])
        assert key0 and not key1
        ism.reset()
        _, key_again = ism.step(video[2])
        assert key_again

    def test_run_sequence_resets_state(self, video):
        """Two consecutive batch runs are independent."""
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        a = ism.run_sequence(video[:2])
        b = ism.run_sequence(video[:2])
        assert a.key_frames == b.key_frames
        assert np.allclose(a.disparities[1], b.disparities[1])


class TestExpansionCache:
    """The cross-frame expansion cache: bit-identical A/B toggle,
    invalidated whenever the consecutive-frame chain breaks."""

    @pytest.fixture(scope="class")
    def short_video(self):
        return sceneflow_scene(
            23, size=(64, 96), max_disp=16, max_speed=2.0
        ).sequence(5)

    def test_cached_bitwise_equals_uncached(self, short_video):
        config = ISMConfig(propagation_window=4)
        cached = ISM(dnn=lambda f: f.disparity, config=config)
        plain = ISM(
            dnn=lambda f: f.disparity, config=config, expansion_cache=False
        )
        a = cached.run_sequence(short_video)
        b = plain.run_sequence(short_video)
        assert cached._cache is not None and plain._cache is None
        for da, db in zip(a.disparities, b.disparities):
            assert np.array_equal(da, db)

    def test_steady_state_populates_cache(self, short_video):
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        ism.step(short_video[0])
        assert ism._cache.left is None  # key frame: nothing cached yet
        ism.step(short_video[1])
        assert ism._cache.left is not None
        assert ism._cache.right is not None

    def test_key_frame_invalidates(self, short_video):
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=2))
        ism.step(short_video[0])
        ism.step(short_video[1])
        assert ism._cache.left is not None
        ism.step(short_video[2], is_key=True)  # re-key breaks the chain
        assert ism._cache.left is None and ism._cache.right is None

    def test_reset_clears(self, short_video):
        ism = ISM(dnn=lambda f: f.disparity, config=ISMConfig(propagation_window=4))
        ism.step(short_video[0])
        ism.step(short_video[1])
        ism.reset()
        assert ism._cache.left is None and ism._cache.right is None

    def test_stale_entry_recomputed_not_reused(self, short_video):
        """A cached expansion whose parameters no longer match must be
        recomputed: same disparities as a fresh uncached run."""
        from repro.core.correspondence import ExpansionCache
        from repro.flow import expand_frame

        cache = ExpansionCache()
        # poison the cache with an expansion of the wrong frame size
        cache.left = expand_frame(np.zeros((8, 10)), levels=3)
        cache.right = expand_frame(np.zeros((8, 10)), levels=3)
        prev, cur = short_video[0], short_video[1]
        key = np.asarray(prev.disparity, dtype=np.float64)
        with_cache, _, _ = propagate_correspondences(
            prev, cur, key, cache=cache
        )
        without, _, _ = propagate_correspondences(prev, cur, key)
        assert np.array_equal(with_cache, without)
