"""The execution-backend layer: protocol conformance and seed parity.

Two jobs: (a) every registered backend satisfies the
:class:`ExecutionBackend` protocol and produces finite, positive
latency/energy for each of the four paper networks; (b) refactoring
the system onto the backend layer changed no numbers — baseline-mode
results are pinned to the values the seed implementation produced.
"""

import math

import pytest

from repro.backends import (
    MODES,
    BackendCapabilities,
    ExecutionBackend,
    UnsupportedModeError,
    available_backends,
    get_backend,
)
from repro.cache import LRUCache
from repro.core import ASVSystem
from repro.core.ism import ISMConfig, nonkey_frame_ops, nonkey_op_counts
from repro.models import STEREO_NETWORKS

TINY = (68, 120)    # keeps full-zoo scheduling fast
SMALL = (135, 240)  # the seed unit-test size (qHD/4)

BACKENDS = sorted(available_backends())


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    return get_backend(request.param)


class TestProtocol:
    def test_builtins_registered(self):
        assert {"systolic", "eyeriss", "gpu"} <= set(BACKENDS)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("abacus")

    def test_instance_shape(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend.name, str) and backend.name
        assert isinstance(backend.capabilities, BackendCapabilities)
        assert backend.frequency_hz > 0

    def test_baseline_always_supported(self, backend):
        assert backend.supports_mode("baseline")
        assert "baseline" in backend.capabilities.modes

    def test_capability_modes_subset(self, backend):
        assert set(backend.capabilities.modes) <= set(MODES)

    def test_unknown_mode_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.require_mode("magic")


class TestParity:
    """All backends x all four paper networks: finite positive costs."""

    @pytest.mark.parametrize("network", sorted(STEREO_NETWORKS))
    def test_baseline_finite_positive(self, backend, network):
        result = backend.network_result(network, "baseline", TINY)
        assert result.cycles > 0 and math.isfinite(result.cycles)
        assert result.energy_j > 0 and math.isfinite(result.energy_j)
        assert result.macs > 0
        assert backend.seconds(result) > 0

    def test_nonkey_or_declared_unsupported(self, backend):
        if backend.capabilities.supports_ism:
            res = backend.nonkey_frame(TINY)
            assert res.cycles > 0 and res.energy_j > 0
            assert math.isfinite(res.energy_j)
        else:
            with pytest.raises(UnsupportedModeError):
                backend.nonkey_frame(TINY)

    def test_unsupported_modes_raise(self):
        with pytest.raises(UnsupportedModeError):
            get_backend("eyeriss").require_mode("ilar")
        with pytest.raises(UnsupportedModeError):
            get_backend("gpu").require_mode("dct")

    def test_systolic_supports_everything(self):
        systolic = get_backend("systolic")
        assert systolic.capabilities.modes == MODES
        assert systolic.capabilities.supports_ism


class TestSeedParity:
    """Baseline-mode numbers pinned to the pre-refactor (seed) values."""

    def test_systolic_dispnet_baseline_unchanged(self):
        system = ASVSystem()
        res = system.dnn_frame("DispNet", "baseline", SMALL)
        assert res.cycles == 10060166
        assert res.energy_j == pytest.approx(0.016800787328800002, rel=1e-12)

    def test_systolic_nonkey_unchanged(self):
        nk = ASVSystem().nonkey_frame(SMALL)
        assert nk.cycles == 421369
        assert nk.energy_j == pytest.approx(0.00016364789, rel=1e-12)

    def test_eyeriss_baseline_and_dct_unchanged(self):
        eyeriss = get_backend("eyeriss")
        base = eyeriss.network_result("DispNet", "baseline", SMALL)
        dct = eyeriss.network_result("DispNet", "dct", SMALL)
        assert base.cycles == 16122198
        assert base.energy_j == pytest.approx(0.017404221175360002, rel=1e-12)
        assert dct.cycles == 13233415
        assert dct.energy_j == pytest.approx(0.01588115816872, rel=1e-12)

    def test_gpu_roofline_unchanged(self):
        gpu = get_backend("gpu")
        secs = gpu.network_seconds("DispNet", "baseline", SMALL)
        res = gpu.network_result("DispNet", "baseline", SMALL)
        assert secs == pytest.approx(0.023977514964426506, rel=1e-9)
        assert res.energy_j == pytest.approx(0.11988757482213253, rel=1e-9)


class TestSharedNonKeyCosts:
    """One cost function feeds both the op budget and the hw models."""

    def test_budget_dict_matches_counts(self):
        ops = nonkey_op_counts(100, 200)
        budget = nonkey_frame_ops(100, 200)
        assert budget["motion_estimation"] == ops.flow
        assert budget["correspondence_search"] == ops.search
        assert budget["bookkeeping"] == ops.bookkeeping
        assert budget["total"] == ops.total == ops.flow + ops.search + ops.bookkeeping

    def test_config_sensitivity(self):
        narrow = nonkey_op_counts(100, 200, ISMConfig(search_radius=2))
        wide = nonkey_op_counts(100, 200, ISMConfig(search_radius=8))
        assert wide.search > narrow.search
        assert wide.pixel_updates > narrow.pixel_updates

    def test_backend_uses_shared_counts(self):
        ops = nonkey_op_counts(*TINY)
        res = get_backend("systolic").nonkey_frame(TINY)
        assert res.macs == ops.array_ops


class TestBoundedCache:
    def test_lru_evicts_oldest(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_lru_access_refreshes(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # a becomes most recent
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_get_or_create_counts_hits(self):
        cache = LRUCache(maxsize=4)
        calls = []
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1
        info = cache.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)
        assert info.hit_rate == pytest.approx(0.5)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_concurrent_get_or_create_runs_factory_once(self):
        """Racing threads on one key must not double-run the factory."""
        import threading

        cache = LRUCache(maxsize=8)
        calls = []
        started = threading.Barrier(8)

        def slow_factory():
            calls.append(1)
            time_waster = sum(range(1000))  # keep the lock held a while
            return time_waster

        def worker():
            started.wait()
            cache.get_or_create("hot", slow_factory)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        info = cache.cache_info()
        assert (info.hits, info.misses) == (7, 1)

    def test_misses_on_different_keys_compute_concurrently(self):
        """Factory-once must not serialize unrelated keys: while key
        'a' is computing, a miss on key 'b' proceeds concurrently."""
        import threading

        cache = LRUCache(maxsize=4)
        b_started = threading.Event()

        def factory_a():
            # stalls until b's factory runs; under a cache-wide
            # factory lock this would deadlock-timeout
            return b_started.wait(timeout=5.0)

        t_a = threading.Thread(
            target=lambda: cache.get_or_create("a", factory_a)
        )
        t_a.start()
        while "a" not in cache._pending:  # wait for a to own its key
            pass
        cache.get_or_create("b", lambda: b_started.set() or "b")
        t_a.join(timeout=5.0)
        assert not t_a.is_alive()
        assert cache.get("a") is True   # factory_a saw b start
        assert cache.get("b") == "b"

    def test_failed_factory_releases_the_key(self):
        cache = LRUCache(maxsize=4)
        with pytest.raises(RuntimeError):
            cache.get_or_create("k", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert cache.get_or_create("k", lambda: "ok") == "ok"
        assert not cache._pending

    def test_multithreaded_stress_keeps_counts_consistent(self):
        """Hammer one cache from many threads; the books must balance."""
        import threading

        cache = LRUCache(maxsize=16)
        n_threads, n_ops = 8, 300
        started = threading.Barrier(n_threads)

        def worker(tid):
            started.wait()
            for i in range(n_ops):
                key = (tid * 7 + i) % 24  # some keys shared, some evicted
                cache.get_or_create(key, lambda k=key: k * 2)
                if i % 5 == 0:
                    cache.get(key)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        info = cache.cache_info()
        total_ops = n_threads * (n_ops + n_ops // 5)
        assert info.hits + info.misses == total_ops
        assert info.currsize == len(cache) <= 16
        # every stored value is the one its factory computed
        for key in range(24):
            value = cache.get(key, default=None)
            assert value is None or value == key * 2

    def test_system_cache_info_and_identity(self):
        system = ASVSystem(cache_size=8)
        a = system.dnn_frame("DispNet", "baseline", TINY)
        b = system.dnn_frame("DispNet", "baseline", TINY)
        assert a is b
        info = system.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert info.maxsize == 8 and info.currsize == 1

    def test_system_cache_bounded(self):
        system = ASVSystem(cache_size=1)
        system.dnn_frame("DispNet", "baseline", TINY)
        system.nonkey_frame(TINY)  # unrelated to the result cache
        system.dnn_frame("FlowNetC", "baseline", TINY)
        assert system.cache_info().currsize == 1


class TestASVSystemBackends:
    def test_default_backend_is_systolic(self):
        assert ASVSystem().backend.name == "systolic"

    def test_explicit_backend_instance(self):
        backend = get_backend("eyeriss")
        system = ASVSystem(backend=backend)
        assert system.backend is backend
        res = system.dnn_frame("DispNet", "baseline", TINY)
        assert res.cycles > 0

    def test_model_compat_property(self):
        from repro.hw.systolic import SystolicModel

        assert isinstance(ASVSystem().model, SystolicModel)

    def test_frame_cost_seconds_true_across_clocks(self):
        """FrameCost must convert correctly even when the backend's
        clock differs from the system hw clock (e.g. the GPU tick)."""
        from repro.hw.config import HWConfig

        slow_hw = HWConfig(frequency_hz=0.5e9)
        system = ASVSystem(hw=slow_hw, backend=get_backend("gpu"))
        cost = system.frame_cost(
            "DispNet", use_ism=False, mode="baseline", size=TINY
        )
        true_secs = get_backend("gpu").network_seconds(
            "DispNet", "baseline", TINY
        )
        assert cost.seconds(system.hw) == pytest.approx(true_secs, rel=1e-9)

    def test_backend_instance_hw_adopted(self):
        """self.hw must reflect what the backend actually computes with."""
        from repro.hw.config import ASV_BASE

        wide = ASV_BASE.with_resources(pe_rows=48, pe_cols=48)
        system = ASVSystem(backend=get_backend("systolic", hw=wide))
        assert system.hw is wide

    def test_backend_instance_rejects_unappliable_settings(self):
        backend = get_backend("systolic")
        with pytest.raises(ValueError, match="configure the backend"):
            ASVSystem(backend=backend, cache_size=4)
        from repro.hw.config import ASV_BASE

        other = ASV_BASE.with_resources(pe_rows=12, pe_cols=12)
        with pytest.raises(ValueError, match="conflicting hw"):
            ASVSystem(hw=other, backend=backend)
