"""Tests for lowering, the tiling optimizer and the static baseline."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deconv import (
    balanced_split,
    best_static_partition,
    lower_conv,
    lower_naive_deconv,
    lower_network,
    lower_spec,
    lower_transformed,
    optimize_layer,
    pack_filter_groups,
    schedule_with_partition,
)
from repro.deconv.exhaustive import Partition
from repro.hw import ASV_BASE, SystolicModel
from repro.nn.workload import ConvSpec

HW = ASV_BASE
MODEL = SystolicModel(HW)


def conv_spec(**kw):
    base = dict(
        name="conv",
        in_channels=32,
        out_channels=64,
        kernel=(3, 3),
        input_size=(64, 96),
        stride=(1, 1),
        padding=(1, 1),
    )
    base.update(kw)
    return ConvSpec(**base)


def deconv_spec(**kw):
    base = dict(
        name="deconv",
        in_channels=64,
        out_channels=32,
        kernel=(4, 4),
        input_size=(32, 48),
        stride=(2, 2),
        padding=(1, 1),
        deconv=True,
        stage="DR",
    )
    base.update(kw)
    return ConvSpec(**base)


class TestBalancedSplit:
    def test_even(self):
        assert balanced_split(12, 3) == [4, 4, 4]

    def test_uneven(self):
        assert balanced_split(13, 3) == [5, 4, 4]

    def test_more_parts_than_items(self):
        assert balanced_split(2, 4) == [1, 1, 0, 0]

    @settings(max_examples=50, deadline=None)
    @given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_properties(self, total, parts):
        split = balanced_split(total, parts)
        assert sum(split) == total
        assert len(split) == parts
        assert max(split) - min(split) <= 1


class TestLowering:
    def test_conv_lowering(self):
        work = lower_conv(conv_spec())
        assert len(work.subconvs) == 1
        assert work.total_macs == conv_spec().macs
        assert work.ifmap_elems == conv_spec().ifmap_elems
        assert work.ofmap_elems == conv_spec().ofmap_elems

    def test_conv_lowering_rejects_deconv(self):
        with pytest.raises(ValueError):
            lower_conv(deconv_spec())

    def test_naive_deconv_pays_dense_macs(self):
        spec = deconv_spec()
        work = lower_naive_deconv(spec)
        assert work.total_macs == spec.macs  # zero-stuffed dense count

    def test_naive_deconv_ifmap_includes_zeros(self):
        spec = deconv_spec()
        work = lower_naive_deconv(spec)
        assert work.ifmap_elems == spec.in_channels * math.prod(spec.upsampled_size)
        assert work.ifmap_elems > spec.ifmap_elems

    def test_transformed_macs_match_effective(self):
        spec = deconv_spec()
        (group,) = lower_transformed(spec, ilar=True)
        assert group.total_macs == spec.macs_effective
        assert len(group.subconvs) == 4

    def test_transformed_no_ilar_splits_groups(self):
        spec = deconv_spec()
        works = lower_transformed(spec, ilar=False)
        assert len(works) == 4
        assert sum(w.total_macs for w in works) == spec.macs_effective

    def test_transformed_output_preserved(self):
        spec = deconv_spec()
        (group,) = lower_transformed(spec)
        assert group.ofmap_elems == spec.ofmap_elems

    def test_3d_lowering_flattens_rows(self):
        spec = ConvSpec(
            "c3", 16, 16, (3, 3, 3), (8, 24, 32), (1, 1, 1), (1, 1, 1)
        )
        work = lower_conv(spec)
        assert work.ifmap_rows == 8 * 24
        assert work.ifmap_cols == 32
        assert work.total_macs == spec.macs

    def test_lower_network_mixes(self):
        specs = [conv_spec(), deconv_spec()]
        assert len(lower_network(specs, transform=True, ilar=True)) == 2
        assert len(lower_network(specs, transform=True, ilar=False)) == 5
        assert len(lower_network(specs, transform=False)) == 2


class TestKnapsack:
    def test_all_filters_scheduled(self):
        layer = lower_transformed(deconv_spec())[0]
        w_cost = [s.taps * layer.in_channels * 2 for s in layer.subconvs]
        p_cost = [64 for _ in layer.subconvs]
        value = [s.taps * layer.in_channels * s.out_rows * s.out_cols
                 for s in layer.subconvs]
        groups = pack_filter_groups(layer, 200_000, w_cost, p_cost, value)
        for k, sub in enumerate(layer.subconvs):
            assert sum(g[k] for g in groups) == sub.filters

    def test_capacity_respected(self):
        layer = lower_transformed(deconv_spec())[0]
        w_cost = [s.taps * layer.in_channels * 2 for s in layer.subconvs]
        p_cost = [64 for _ in layer.subconvs]
        value = [1 for _ in layer.subconvs]
        cap = 8_000
        groups = pack_filter_groups(layer, cap, w_cost, p_cost, value)
        for g in groups:
            used = sum(
                g[k] * (w_cost[k] + p_cost[k]) for k in range(len(g))
            )
            assert used <= cap

    def test_too_small_capacity_raises(self):
        layer = lower_transformed(deconv_spec())[0]
        w_cost = [10_000 for _ in layer.subconvs]
        p_cost = [0 for _ in layer.subconvs]
        value = [1 for _ in layer.subconvs]
        with pytest.raises(ValueError):
            pack_filter_groups(layer, 100, w_cost, p_cost, value)

    def test_prefers_fewer_groups_with_more_room(self):
        layer = lower_transformed(deconv_spec())[0]
        w_cost = [s.taps * layer.in_channels * 2 for s in layer.subconvs]
        p_cost = [64 for _ in layer.subconvs]
        value = [s.taps for s in layer.subconvs]
        small = pack_filter_groups(layer, 20_000, w_cost, p_cost, value)
        large = pack_filter_groups(layer, 400_000, w_cost, p_cost, value)
        assert len(large) <= len(small)


class TestOptimizer:
    def test_schedule_valid_for_conv(self):
        work = lower_conv(conv_spec())
        sched = optimize_layer(work, HW, MODEL)
        sched.validate(HW)
        assert sched.total_macs == work.total_macs

    def test_schedule_valid_for_transformed_deconv(self):
        (work,) = lower_transformed(deconv_spec())
        sched = optimize_layer(work, HW, MODEL)
        sched.validate(HW)

    def test_transformed_beats_naive_by_stride_squared(self):
        spec = deconv_spec(in_channels=128, out_channels=128)
        naive = optimize_layer(lower_naive_deconv(spec), HW, MODEL)
        (t,) = lower_transformed(spec)
        trans = optimize_layer(t, HW, MODEL)
        speedup = MODEL.run_schedule(naive).cycles / MODEL.run_schedule(trans).cycles
        assert 3.0 < speedup < 5.0  # ~4x for 2-D stride 2, compute bound

    def test_3d_transformed_speedup_near_8x(self):
        spec = ConvSpec(
            "d3", 32, 16, (3, 3, 3), (12, 34, 60), (2, 2, 2), (1, 1, 1),
            deconv=True,
        )
        naive = optimize_layer(lower_naive_deconv(spec), HW, MODEL)
        (t,) = lower_transformed(spec)
        trans = optimize_layer(t, HW, MODEL)
        speedup = MODEL.run_schedule(naive).cycles / MODEL.run_schedule(trans).cycles
        assert 6.0 < speedup < 10.0

    def test_ilar_reduces_dram_traffic_vs_convr(self):
        """The unique ILAR claim: sharing the ifmap across sub-convs cuts
        DRAM traffic when the ifmap dominates."""
        spec = deconv_spec(
            in_channels=32, out_channels=32, input_size=(128, 192)
        )
        (ilar,) = lower_transformed(spec, ilar=True)
        convr = lower_transformed(spec, ilar=False)
        r_ilar = MODEL.run_schedule(optimize_layer(ilar, HW, MODEL))
        r_convr = [
            MODEL.run_schedule(optimize_layer(w, HW, MODEL)) for w in convr
        ]
        assert r_ilar.dram_bytes < sum(r.dram_bytes for r in r_convr)

    def test_optimized_never_slower_than_static(self):
        work = lower_conv(conv_spec())
        part = Partition(256 * 1024, 256 * 1024, 256 * 1024)
        static = schedule_with_partition(work, HW, part, MODEL)
        opt = optimize_layer(work, HW, MODEL)
        assert (
            MODEL.run_schedule(opt).cycles
            <= MODEL.run_schedule(static).cycles
        )

    def test_huge_layer_schedulable(self):
        """A 3-D cost-volume layer far larger than the buffer must still
        find a feasible schedule via ic-chunking + tiling."""
        spec = ConvSpec(
            "cv", 64, 64, (3, 3, 3), (48, 135, 240), (1, 1, 1), (1, 1, 1)
        )
        work = lower_conv(spec)
        assert work.ifmap_elems * HW.bytes_per_elem > HW.buffer_bytes
        sched = optimize_layer(work, HW, MODEL)
        sched.validate(HW)

    def test_infeasible_hardware_raises(self):
        """A kernel whose single-channel receptive field exceeds the
        usable buffer cannot be tiled at all."""
        tiny = HW.with_resources(buffer_bytes=8 * 1024, bank_bytes=4 * 1024)
        spec = ConvSpec("fat", 4, 4, (48, 48), (48, 48), (1, 1), (0, 0))
        work = lower_conv(spec)
        with pytest.raises(ValueError):
            optimize_layer(work, tiny, SystolicModel(tiny))


class TestStaticPartitionBaseline:
    def _network(self):
        return lower_network(
            [
                conv_spec(name="c1"),
                conv_spec(name="c2", in_channels=64, out_channels=64,
                          input_size=(32, 48)),
                deconv_spec(name="d1"),
            ],
            transform=False,
        )

    def test_partition_requires_positive_sections(self):
        with pytest.raises(ValueError):
            Partition(0, 1024, 1024)

    def test_best_partition_schedules_all_layers(self):
        layers = self._network()
        part, scheds = best_static_partition(layers, HW, MODEL)
        assert len(scheds) == len(layers)
        for s in scheds:
            s.validate(HW)
        assert part.total <= HW.usable_buffer_bytes

    def test_same_partition_used_for_all_layers(self):
        layers = self._network()
        part, scheds = best_static_partition(layers, HW, MODEL)
        for s in scheds:
            assert repr(part) in s.label

    def test_partition_none_when_layer_cannot_fit(self):
        spec = ConvSpec("big", 512, 512, (3, 3), (2048, 2048), (1, 1), (1, 1))
        work = lower_conv(spec)
        tiny_part = Partition(8 * 1024, 4 * 1024, 4 * 1024)
        assert schedule_with_partition(work, HW, tiny_part, MODEL) is None
