"""The repo's own static-analysis pass, tested the way it gates CI.

Three layers, mirroring ``docs/static-analysis.md``:

* **Fixtures** — every rule (ASV001–ASV005) has at least one failing
  and one passing snippet, with the reported code and line asserted,
  plus the per-line / per-file suppression syntax.
* **The gate** — ``python -m tools.asvlint src`` must exit 0 on the
  committed tree, and reintroducing a violation must fail both the
  CLI and :func:`lint_source`.  ``mypy`` (installed in CI, optional
  locally) must pass on the four typed packages.
* **The dynamic sanitizers** — the ``ASV_SHM_SANITIZE=1`` write-overlap
  sanitizer catches a deliberately overlapping band and accepts the
  real tiled kernels; the determinism canary renders the same chaos
  report byte-for-byte twice.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.executor import _BAND_KERNELS, _run_band_shm, TileExecutor
from repro.parallel.shm import (
    ShmArena,
    ShmSanitizeError,
    arm_segment,
    assert_covered,
    claim_region,
    sanitize_enabled,
    shm_available,
)
from tools.asvlint import (
    Rule,
    available_rules,
    canary_reports,
    get_rule,
    lint_paths,
    lint_source,
    register_rule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

needs_shm = pytest.mark.skipif(not shm_available(), reason="no shared memory")


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_builtin_rules_registered():
    assert set(available_rules()) >= {
        "ASV001", "ASV002", "ASV003", "ASV004", "ASV005"
    }


def test_every_rule_carries_catalog_fields():
    for code in available_rules():
        rule = get_rule(code)
        assert rule.code == code
        assert rule.name and rule.rationale and rule.hint


def test_unknown_rule_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rule("ASV999")


def test_third_party_rules_plug_in_like_backends():
    from tools.asvlint import engine

    @register_rule
    class EveryModuleRule(Rule):
        code = "ASV901"
        name = "test-rule"
        rationale = "fixture"
        hint = "n/a"

        def check(self, ctx):
            yield ctx.violation(ctx.tree, self.code, "hello")

    try:
        assert codes(lint_source("x = 1\n", select=["ASV901"])) == ["ASV901"]
    finally:
        engine._RULES.pop("ASV901")


# ----------------------------------------------------------------------
# ASV001 determinism
# ----------------------------------------------------------------------
def test_asv001_flags_wall_clock():
    found = lint_source("import time\nt0 = time.time()\n")
    assert codes(found) == ["ASV001"]
    assert found[0].line == 2
    assert "wall clock" in found[0].message


def test_asv001_allows_perf_counter():
    assert lint_source("import time\nt0 = time.perf_counter()\n") == []


def test_asv001_flags_stdlib_random_and_aliases():
    assert codes(lint_source("import random\nx = random.random()\n")) == ["ASV001"]
    assert codes(lint_source("from random import choice\nx = choice([1])\n")) == [
        "ASV001"
    ]


def test_asv001_flags_unseeded_default_rng():
    bad = "import numpy as np\nrng = np.random.default_rng()\n"
    good = "import numpy as np\nrng = np.random.default_rng(seed)\n"
    assert codes(lint_source(bad)) == ["ASV001"]
    assert lint_source(good) == []


def test_asv001_flags_legacy_np_random_globals():
    found = lint_source("import numpy as np\nnp.random.seed(0)\n")
    assert codes(found) == ["ASV001"]
    assert "global RNG state" in found[0].message


def test_asv001_hash_banned_only_in_strict_packages():
    snippet = "x = hash('stream-0')\n"
    strict = lint_source(snippet, rel="repro/cluster/faults.py")
    assert codes(strict) == ["ASV001"]
    assert strict[0].line == 1
    # outside cluster/pipeline/parallel, hash() is not a lint error
    assert lint_source(snippet, rel="repro/stereo/sgm.py") == []


# ----------------------------------------------------------------------
# ASV002 shm lifecycle
# ----------------------------------------------------------------------
def test_asv002_flags_unreleased_arena():
    bad = (
        "def leak(x):\n"
        "    arena = ShmArena()\n"
        "    handle = arena.share(x)\n"
        "    return handle\n"
    )
    found = lint_source(bad, rel="repro/parallel/executor.py")
    assert codes(found) == ["ASV002"]
    assert found[0].line == 2
    assert "never closed" in found[0].message


def test_asv002_accepts_context_manager_and_explicit_close():
    with_cm = (
        "def fine(x):\n"
        "    with ShmArena() as arena:\n"
        "        return arena.share(x)\n"
    )
    with_close = (
        "def fine(x):\n"
        "    arena = ShmArena()\n"
        "    try:\n"
        "        return arena.share(x)\n"
        "    finally:\n"
        "        arena.close()\n"
    )
    assert lint_source(with_cm, rel="repro/parallel/executor.py") == []
    assert lint_source(with_close, rel="repro/parallel/executor.py") == []


def test_asv002_confines_raw_shared_memory_to_shm_module():
    snippet = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe():\n"
        "    with SharedMemory(name='x', create=True, size=8) as seg:\n"
        "        return seg\n"
    )
    found = lint_source(snippet, rel="repro/cluster/engine.py")
    assert codes(found) == ["ASV002"]
    assert "outside parallel/shm.py" in found[0].message


# ----------------------------------------------------------------------
# ASV003 precision threading
# ----------------------------------------------------------------------
def test_asv003_flags_dtypeless_allocation_on_kernel_paths():
    bad = "import numpy as np\ndef f(h, w):\n    return np.zeros((h, w))\n"
    found = lint_source(bad, rel="repro/stereo/block_matching.py")
    assert codes(found) == ["ASV003"]
    assert found[0].line == 3
    # the same allocation outside the precision scope is fine
    assert lint_source(bad, rel="repro/cluster/report.py") == []


def test_asv003_accepts_explicit_dtype():
    good = (
        "import numpy as np\n"
        "def f(h, w, precision):\n"
        "    return np.zeros((h, w), dtype=resolve_precision(precision))\n"
    )
    assert lint_source(good, rel="repro/stereo/block_matching.py") == []


def test_asv003_flags_bare_float_casts():
    bad = "import numpy as np\ndef f(x):\n    return np.float64(x)\n"
    found = lint_source(bad, rel="repro/flow/warp.py")
    assert codes(found) == ["ASV003"]


def test_asv003_flags_unforwarded_precision_knob():
    bad = (
        "def match(left, right, precision='float64'):\n"
        "    return left - right\n"
    )
    found = lint_source(bad, rel="repro/stereo/census.py")
    assert codes(found) == ["ASV003"]
    assert "never forwards" in found[0].message
    good = (
        "def match(left, right, precision='float64'):\n"
        "    return kernel(left, right, precision=precision)\n"
    )
    assert lint_source(good, rel="repro/stereo/census.py") == []


# ----------------------------------------------------------------------
# ASV004 registry/doc drift
# ----------------------------------------------------------------------
def _registering(name):
    return (
        "from repro.backends.registry import register_backend\n"
        f"@register_backend({name!r})\n"
        "class Custom:\n"
        "    pass\n"
    )


def test_asv004_flags_undocumented_registered_name(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "backends.md").write_text("only `documented-npu` here\n")
    found = lint_source(_registering("mystery-npu"), repo_root=tmp_path)
    assert codes(found) == ["ASV004"]
    assert found[0].line == 2
    assert lint_source(_registering("documented-npu"), repo_root=tmp_path) == []


def test_asv004_committed_registries_are_documented():
    # the live-tree variant of the fixture: every name registered in
    # src/ appears in docs/ (this is what `python -m tools.asvlint src`
    # enforces in CI)
    assert lint_paths([REPO_ROOT / "src"], select=["ASV004"]) == []


# ----------------------------------------------------------------------
# ASV005 bounded submission
# ----------------------------------------------------------------------
def test_asv005_flags_unbounded_submit_loop():
    bad = (
        "def fan_out(pool, jobs):\n"
        "    futures = []\n"
        "    for job in jobs:\n"
        "        futures.append(pool.submit(run, job))\n"
        "    return futures\n"
    )
    found = lint_source(bad)
    assert codes(found) == ["ASV005"]
    assert found[0].line == 4


def test_asv005_flags_submit_comprehension():
    bad = "def fan_out(pool, jobs):\n    return [pool.submit(run, j) for j in jobs]\n"
    assert codes(lint_source(bad)) == ["ASV005"]


def test_asv005_accepts_islice_primed_loop():
    good = (
        "from itertools import islice\n"
        "def prime(pool, jobs, workers):\n"
        "    pending = [pool.submit(run, j) for j in islice(jobs, workers)]\n"
        "    while pending:\n"
        "        result = pending.pop(0).result()\n"
        "        job = next(jobs, None)\n"
        "        if job is not None:\n"
        "            pending.append(pool.submit(run, job))\n"
        "        yield result\n"
    )
    assert lint_source(good) == []


# ----------------------------------------------------------------------
# suppression syntax
# ----------------------------------------------------------------------
def test_line_suppression_silences_named_code():
    src = (
        "import time\n"
        "t0 = time.time()  # asvlint: disable=ASV001  display-only timestamp\n"
    )
    assert lint_source(src) == []


def test_line_suppression_is_code_specific():
    src = "import time\nt0 = time.time()  # asvlint: disable=ASV002\n"
    assert codes(lint_source(src)) == ["ASV001"]


def test_line_suppression_only_covers_its_line():
    src = (
        "import time\n"
        "a = time.time()  # asvlint: disable=ASV001\n"
        "b = time.time()\n"
    )
    found = lint_source(src)
    assert [(v.code, v.line) for v in found] == [("ASV001", 3)]


def test_file_suppression_and_all_wildcard():
    src = (
        "# asvlint: disable-file=ASV001  fixture exercising the clock\n"
        "import time\n"
        "t0 = time.time()\n"
    )
    assert lint_source(src) == []
    src_all = "import time\nt0 = time.time()  # asvlint: disable=all\n"
    assert lint_source(src_all) == []


# ----------------------------------------------------------------------
# the gate: CLI + committed tree + reintroduction
# ----------------------------------------------------------------------
def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "tools.asvlint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def test_committed_tree_is_clean():
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "asvlint: clean" in proc.stderr


def test_reintroduced_violation_fails_cli(tmp_path):
    bad = tmp_path / "regression.py"
    bad.write_text("import time\nt0 = time.time()\n")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "ASV001" in proc.stdout
    assert f"{bad}:2" in proc.stdout
    assert "[fix:" in proc.stdout


def test_reintroduced_violation_fails_in_process():
    # the exact regression PR 9 fixed: a wall-clock read in evaluation
    found = lint_source(
        "import time\nt0 = time.time()\n", rel="repro/evaluation/__main__.py"
    )
    assert [(v.code, v.line) for v in found] == [("ASV001", 2)]


def test_cli_github_annotations(tmp_path):
    bad = tmp_path / "annotated.py"
    bad.write_text("import time\nt0 = time.time()\n")
    proc = _run_cli(str(bad), "--github")
    assert proc.returncode == 1
    assert f"::error file={bad},line=2," in proc.stdout
    assert "title=ASV001" in proc.stdout


def test_cli_list_rules_and_select():
    listing = _run_cli("--list-rules")
    assert listing.returncode == 0
    for code in ("ASV001", "ASV002", "ASV003", "ASV004", "ASV005"):
        assert code in listing.stdout
    unknown = _run_cli("src", "--select", "ASV999")
    assert unknown.returncode != 0


def test_syntax_error_reported_as_asv000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    found = lint_paths([broken])
    assert codes(found) == ["ASV000"]
    assert "syntax error" in found[0].message


def test_mypy_passes_on_typed_packages():
    api = pytest.importorskip(
        "mypy.api", reason="mypy is installed in CI, optional locally"
    )
    stdout, stderr, status = api.run(
        [
            "--config-file", str(REPO_ROOT / "mypy.ini"),
            "-p", "repro.backends",
            "-p", "repro.pipeline",
            "-p", "repro.cluster",
            "-p", "repro.parallel",
        ]
    )
    assert status == 0, stdout + stderr


# ----------------------------------------------------------------------
# the shm write-overlap sanitizer
# ----------------------------------------------------------------------
def test_sanitizer_off_by_default():
    assert not sanitize_enabled()


def test_arm_claim_and_coverage_primitives(monkeypatch):
    view = np.empty((4, 3), dtype=np.float64)
    assert arm_segment(view)
    assert np.all(np.isnan(view))
    claim_region(view, (slice(0, 2),))      # untouched rows: claim succeeds
    view[0:2] = 1.0
    with pytest.raises(ShmSanitizeError, match="already claimed"):
        claim_region(view, (slice(1, 3),))  # row 1 was just written
    with pytest.raises(ShmSanitizeError, match="unwritten"):
        assert_covered(view)
    view[2:4] = 2.0
    assert_covered(view)                    # fully written: passes
    # integer segments have no NaN sentinel and are left alone
    assert not arm_segment(np.empty((2, 2), dtype=np.int64))


@needs_shm
def test_sanitizer_catches_overlapping_band(monkeypatch):
    # a deliberately buggy banding: two jobs whose output rows overlap
    monkeypatch.setenv("ASV_SHM_SANITIZE", "1")
    monkeypatch.setitem(
        _BAND_KERNELS, "stub", lambda a, **kw: np.array(a, dtype=np.float64)
    )
    with ShmArena() as arena:
        img = np.arange(40.0).reshape(8, 5)
        in_handle = arena.share(img)
        out_handle, out_view = arena.alloc((8, 5), np.float64)
        assert arm_segment(out_view)
        _run_band_shm("stub", (in_handle,), 0, 4, {}, (0, 4), 0, out_handle, 0)
        with pytest.raises(ShmSanitizeError, match="disjoint"):
            # writes rows 2:6 — rows 2:4 already belong to the first band
            _run_band_shm("stub", (in_handle,), 2, 6, {}, (0, 4), 0, out_handle, 2)


@needs_shm
def test_sanitizer_passes_disjoint_bands(monkeypatch):
    monkeypatch.setenv("ASV_SHM_SANITIZE", "1")
    monkeypatch.setitem(
        _BAND_KERNELS, "stub", lambda a, **kw: np.array(a, dtype=np.float64)
    )
    with ShmArena() as arena:
        img = np.arange(40.0).reshape(8, 5)
        in_handle = arena.share(img)
        out_handle, out_view = arena.alloc((8, 5), np.float64)
        assert arm_segment(out_view)
        _run_band_shm("stub", (in_handle,), 0, 4, {}, (0, 4), 0, out_handle, 0)
        _run_band_shm("stub", (in_handle,), 4, 8, {}, (0, 4), 0, out_handle, 4)
        assert_covered(out_view)
        assert np.array_equal(out_view, img)


@needs_shm
@pytest.mark.parametrize("kernel", ["bm", "sgm"])
def test_real_kernels_bit_identical_under_sanitizer(monkeypatch, kernel):
    monkeypatch.setenv("ASV_SHM_SANITIZE", "1")
    from repro.datasets import sceneflow_scene

    frame = sceneflow_scene(5, size=(25, 36), max_disp=10).render(0)
    with TileExecutor(workers=1) as ref_ex, TileExecutor(
        workers=2, transport="shm", tile_rows=7
    ) as ex:
        ref = ref_ex.kernel(kernel)(frame.left, frame.right, 10)
        out = ex.kernel(kernel)(frame.left, frame.right, 10)
    assert np.array_equal(ref, out)


# ----------------------------------------------------------------------
# the determinism canary
# ----------------------------------------------------------------------
def test_canary_reports_are_byte_identical():
    first, second = canary_reports(n_frames=6, seed=3)
    assert first and first == second


def test_canary_cli_exit_code():
    proc = _run_cli("--canary")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "canary" in proc.stdout.lower()


# ----------------------------------------------------------------------
# ASV006 halo sufficiency (flow-sensitive)
# ----------------------------------------------------------------------
_EXEC_FIXTURE_HEADER = """\
from repro.parallel.tiles import Stencil, split_rows, stencil

CENSUS_STENCIL = Stencil.window("window")
AGGREGATE_STENCIL = Stencil.infinite()

@stencil(CENSUS_STENCIL)
def census_block_match(left, right, window=5):
    return left

@stencil(AGGREGATE_STENCIL)
def aggregate(cost):
    return cost

_BAND_KERNELS = {"census": census_block_match, "agg": aggregate}

class Exec:
    def _tiled(self, kernel, arrays, kwargs, halo):
        pass
"""


def _exec_fixture(body):
    return _EXEC_FIXTURE_HEADER + body


def test_asv006_registered_with_catalog_fields():
    assert {"ASV006", "ASV007", "ASV008"} <= set(available_rules())


def test_asv006_shrunken_halo_fails_with_location():
    src = _exec_fixture(
        "    def run(self, left, right, window):\n"
        "        kwargs = dict(window=window)\n"
        "        self._tiled('census', (left, right), kwargs, halo=window // 4)\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV006"]
    # the violation lands on the _tiled call line, not somewhere vague
    assert found[0].line == len(_EXEC_FIXTURE_HEADER.splitlines()) + 3
    assert "smaller than" in found[0].message


def test_asv006_stencil_derived_halo_passes():
    src = _exec_fixture(
        "    def run(self, left, right, window):\n"
        "        kwargs = dict(window=window)\n"
        "        self._tiled('census', (left, right), kwargs,\n"
        "                    halo=CENSUS_STENCIL.halo(window=window))\n"
    )
    assert lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


def test_asv006_flags_parameter_mismatch_between_halo_and_kwargs():
    src = _exec_fixture(
        "    def run(self, left, right, window):\n"
        "        kwargs = dict(window=window + 2)\n"
        "        self._tiled('census', (left, right), kwargs,\n"
        "                    halo=CENSUS_STENCIL.halo(window=window))\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV006"]
    assert "kernel receives" in found[0].message


def test_asv006_flags_wrong_stencil_constant():
    src = _exec_fixture(
        "BLOCK_STENCIL = Stencil.window('block_size')\n"
        "class Exec2(Exec):\n"
        "    def run(self, left, right, window):\n"
        "        kwargs = dict(window=window)\n"
        "        self._tiled('census', (left, right), kwargs,\n"
        "                    halo=BLOCK_STENCIL.halo(block_size=window))\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV006"]
    assert "declares" in found[0].message


def test_asv006_infinite_stencil_is_untileable():
    src = _exec_fixture(
        "    def run(self, cost):\n"
        "        self._tiled('agg', (cost,), dict(), halo=3)\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV006"]
    assert "no finite halo" in found[0].message


def test_asv006_flags_understated_declaration():
    # the kernel body reads a 9-tap vertical window but declares radius 1
    src = (
        "import numpy as np\n"
        "from scipy import ndimage\n"
        "from repro.parallel.tiles import Stencil, stencil\n"
        "\n"
        "@stencil(Stencil.fixed(1))\n"
        "def lying_kernel(img):\n"
        "    taps = np.full(9, 1.0 / 9.0)\n"
        "    return ndimage.correlate1d(img, taps, axis=0)\n"
    )
    found = lint_source(
        src, rel="repro/stereo/fx.py", repo_root=REPO_ROOT, select=["ASV006"]
    )
    assert codes(found) == ["ASV006"]
    assert "reaches" in found[0].message
    # widening the declaration to the true footprint passes
    honest = src.replace("Stencil.fixed(1)", "Stencil.fixed(4)")
    assert (
        lint_source(
            honest, rel="repro/stereo/fx.py", repo_root=REPO_ROOT, select=["ASV006"]
        )
        == []
    )


def test_asv006_split_rows_requires_matching_stencil():
    src = _exec_fixture(
        "def runner(img, window):\n"
        "    bands = split_rows(img.shape[0], 4, 1)\n"
        "    return [census_block_match(img, img, window=window)\n"
        "            for lo, hi in bands]\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV006"]
    good = _exec_fixture(
        "def runner(img, window):\n"
        "    bands = split_rows(img.shape[0], 4,\n"
        "                       CENSUS_STENCIL.halo(window=window))\n"
        "    return [census_block_match(img, img, window=window)\n"
        "            for lo, hi in bands]\n"
    )
    assert lint_source(good, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


def test_asv006_executor_call_sites_verify_on_committed_tree():
    # the acceptance bar: every real _tiled call site proves its halo
    found = lint_paths([REPO_ROOT / "src"], select=["ASV006"])
    assert found == []


# ----------------------------------------------------------------------
# ASV007 shm write-region safety (flow-sensitive)
# ----------------------------------------------------------------------
_OVERLAP_FIXTURE = """\
from repro.parallel.executor import _run_band_shm

def overlapping_bands(in_handle, out_handle):
    _run_band_shm("stub", (in_handle,), 0, 4, {}, (0, 4), 0, out_handle, 0)
    _run_band_shm("stub", (in_handle,), 2, 6, {}, (0, 4), 0, out_handle, 2)
"""


def test_asv007_flags_overlapping_band_writes():
    found = lint_source(
        _OVERLAP_FIXTURE, rel="repro/parallel/fx.py", repo_root=REPO_ROOT
    )
    assert codes(found) == ["ASV007"]
    assert "overlapping rows [0, 4) and [2, 6)" in found[0].message


def test_asv007_accepts_disjoint_and_exclusive_bands():
    disjoint = _OVERLAP_FIXTURE.replace("(0, 4), 0, out_handle, 2", "(2, 4), 0, out_handle, 4")
    assert lint_source(disjoint, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []
    exclusive = (
        "from repro.parallel.executor import _run_band_shm\n"
        "def pick(in_handle, out_handle, flag):\n"
        "    if flag:\n"
        "        _run_band_shm('s', (in_handle,), 0, 4, {}, (0, 4), 0, out_handle, 0)\n"
        "    else:\n"
        "        _run_band_shm('s', (in_handle,), 2, 6, {}, (0, 4), 0, out_handle, 2)\n"
    )
    assert lint_source(exclusive, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


@needs_shm
def test_asv007_agrees_with_dynamic_sanitizer_on_same_fixture(monkeypatch):
    # the acceptance bar: the static rule and the ASV_SHM_SANITIZE=1
    # runtime sanitizer catch the SAME overlapping-band source
    static = lint_source(
        _OVERLAP_FIXTURE, rel="repro/parallel/fx.py", repo_root=REPO_ROOT
    )
    assert codes(static) == ["ASV007"]

    monkeypatch.setenv("ASV_SHM_SANITIZE", "1")
    monkeypatch.setitem(
        _BAND_KERNELS, "stub", lambda a, **kw: np.array(a, dtype=np.float64)
    )
    namespace = {}
    exec(compile(_OVERLAP_FIXTURE, "fx.py", "exec"), namespace)
    with ShmArena() as arena:
        img = np.arange(40.0).reshape(8, 5)
        in_handle = arena.share(img)
        out_handle, out_view = arena.alloc((8, 5), np.float64)
        assert arm_segment(out_view)
        with pytest.raises(ShmSanitizeError, match="disjoint"):
            namespace["overlapping_bands"](in_handle, out_handle)


def test_asv007_flags_view_read_before_jobs_drain():
    src = (
        "def run(self, arena, jobs_args):\n"
        "    out_handle, out_view = arena.alloc((8, 8), 'float64')\n"
        "    jobs = self._iter_map(run_one, jobs_args)\n"
        "    snapshot = out_view.copy()\n"
        "    for _ in jobs:\n"
        "        pass\n"
        "    return snapshot\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV007"]
    assert "not be fully consumed" in found[0].message
    drained = (
        "def run(self, arena, jobs_args):\n"
        "    out_handle, out_view = arena.alloc((8, 8), 'float64')\n"
        "    jobs = self._iter_map(run_one, jobs_args)\n"
        "    for _ in jobs:\n"
        "        pass\n"
        "    return out_view.copy()\n"
    )
    assert lint_source(drained, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


def test_asv007_flags_exception_path_skipping_cleanup():
    src = (
        "from repro.parallel.shm import ShmArena\n"
        "def run(jobs):\n"
        "    arena = ShmArena()\n"
        "    handle = arena.share(jobs)\n"
        "    arena.close()\n"
        "    return handle\n"
    )
    found = lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT)
    assert "ASV007" in codes(found)
    leak = next(v for v in found if v.code == "ASV007")
    assert "escapes before 'arena'" in leak.message
    protected = (
        "from repro.parallel.shm import ShmArena\n"
        "def run(jobs):\n"
        "    arena = ShmArena()\n"
        "    try:\n"
        "        return arena.share(jobs)\n"
        "    finally:\n"
        "        arena.close()\n"
    )
    assert lint_source(protected, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


def test_asv007_accepts_conditional_arena_ownership():
    # the real _tiled pattern: borrow the caller's arena or own a fresh one
    src = (
        "from repro.parallel.shm import ShmArena\n"
        "def run(jobs, arena=None):\n"
        "    local = arena if arena is not None else ShmArena()\n"
        "    try:\n"
        "        return local.share(jobs)\n"
        "    finally:\n"
        "        if arena is None:\n"
        "            local.close()\n"
    )
    assert lint_source(src, rel="repro/parallel/fx.py", repo_root=REPO_ROOT) == []


# ----------------------------------------------------------------------
# ASV008 lock discipline (flow-sensitive)
# ----------------------------------------------------------------------
_LOCK_FIXTURE = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def put(self, k, v):
        with self._lock:
            self._data[k] = v

    def get(self, k):
        {get_body}
"""


def test_asv008_flags_unguarded_access_to_guarded_field():
    src = _LOCK_FIXTURE.replace("{get_body}", "return self._data.get(k)")
    found = lint_source(src, rel="repro/cache.py", repo_root=REPO_ROOT)
    assert codes(found) == ["ASV008"]
    assert "'_data'" in found[0].message
    assert "Cache.put" in found[0].message


def test_asv008_accepts_consistent_guarding():
    src = _LOCK_FIXTURE.replace(
        "{get_body}", "with self._lock:\n            return self._data.get(k)"
    )
    assert lint_source(src, rel="repro/cache.py", repo_root=REPO_ROOT) == []


def test_asv008_init_is_exempt_and_committed_tree_clean():
    # __init__ populates fields before the object is shared: exempt
    src = _LOCK_FIXTURE.replace(
        "{get_body}", "with self._lock:\n            return self._data.get(k)"
    )
    assert lint_source(src, rel="repro/cache.py", repo_root=REPO_ROOT) == []
    # the hardened ShmArena/LRUCache pass their own rule
    assert lint_paths([REPO_ROOT / "src"], select=["ASV008"]) == []


# ----------------------------------------------------------------------
# engine/CLI: unreadable files, SARIF, --stats
# ----------------------------------------------------------------------
def test_unreadable_file_reported_as_asv000(tmp_path):
    target = tmp_path / "gone.py"
    broken = tmp_path / "broken.py"
    broken.symlink_to(target)  # dangling: read_text raises OSError
    (tmp_path / "binary.py").write_bytes(b"\xff\xfe\x00bad")
    found = lint_paths([tmp_path])
    assert codes(found) == ["ASV000", "ASV000"]
    assert all("unreadable file" in v.message for v in found)
    proc = _run_cli(str(tmp_path))
    assert proc.returncode == 1
    assert "unreadable file" in proc.stdout


def test_cli_sarif_output(tmp_path):
    import json

    bad = tmp_path / "regression.py"
    bad.write_text("import time\nt0 = time.time()\n")
    proc = _run_cli(str(bad), "--format=sarif")
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "asvlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"ASV001", "ASV006", "ASV007", "ASV008"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "ASV001"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 2


def test_cli_stats_reports_per_rule_runtime():
    proc = _run_cli("src", "--select", "ASV001,ASV006", "--stats")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ASV001" in proc.stderr and "ASV006" in proc.stderr
    assert "rules total" in proc.stderr


def test_committed_tree_and_tools_are_clean():
    # the exact blocking CI invocation: src AND the linter's own code
    proc = _run_cli("src", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr
