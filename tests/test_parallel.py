"""Tiled multi-core kernel execution: seams must be invisible.

The contract of :mod:`repro.parallel` is *bit-identity*: splitting a
frame into halo-padded row bands and stitching the results must
reproduce whole-frame execution exactly — for every matcher, any band
count (including bands far smaller than the search range), odd
heights, both worker pools, and both precisions.  These tests pin
that contract; the speed side lives in ``benchmarks/bench_kernels.py``.
"""

import glob
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.flow import farneback_flow, flow_iteration, poly_expansion
from repro.parallel import TileExecutor, available_kernels, shm_available, split_rows
from repro.pipeline import QualityProbe, sceneflow_stream
from repro.stereo import (
    block_match,
    census_block_match,
    guided_block_match,
    sgm,
)

SIZE = (23, 36)  # deliberately odd height
MAX_DISP = 18    # larger than every band height exercised below
RADIUS = 6       # likewise larger than the smallest bands

#: whole-frame reference call per kernel name
_REFERENCE = {
    "bm": lambda f, **kw: block_match(f.left, f.right, MAX_DISP, **kw),
    "census": lambda f, **kw: census_block_match(f.left, f.right, MAX_DISP, **kw),
    "sgm": lambda f, **kw: sgm(f.left, f.right, MAX_DISP, paths=8, **kw),
    "guided": lambda f, **kw: guided_block_match(
        f.left, f.right, f.disparity, radius=RADIUS, **kw
    ),
}


def _tiled(executor, name, f):
    call = {
        "bm": lambda: executor.block_match(f.left, f.right, MAX_DISP),
        "census": lambda: executor.census_block_match(f.left, f.right, MAX_DISP),
        "sgm": lambda: executor.sgm(f.left, f.right, MAX_DISP, paths=8),
        "guided": lambda: executor.guided_block_match(
            f.left, f.right, f.disparity, radius=RADIUS
        ),
    }
    return call[name]()


@pytest.fixture(scope="module")
def frame():
    return sceneflow_scene(11, size=SIZE, max_disp=12).render(0)


@pytest.fixture(scope="module")
def references(frame):
    return {name: _REFERENCE[name](frame) for name in available_kernels()}


class TestSplitRows:
    def test_payloads_tile_exactly(self):
        for height in (1, 2, 7, 23, 100):
            for n in (1, 2, 3, 7, height + 5):
                bands = split_rows(height, n, halo=3)
                assert bands[0].start == 0 and bands[-1].stop == height
                for a, b in zip(bands, bands[1:]):
                    assert a.stop == b.start  # no gap, no overlap
                assert len(bands) == min(n, height)

    def test_heights_balanced(self):
        rows = [b.rows for b in split_rows(23, 5, halo=0)]
        assert sum(rows) == 23
        assert max(rows) - min(rows) <= 1

    def test_halo_clamped_to_image(self):
        bands = split_rows(10, 3, halo=100)
        assert all(b.lo == 0 and b.hi == 10 for b in bands)

    def test_crop_recovers_payload(self):
        for band in split_rows(31, 4, halo=2):
            lo, hi = band.crop
            assert band.lo + lo == band.start
            assert band.lo + hi == band.stop

    @pytest.mark.parametrize(
        "height,n,halo", [(0, 1, 0), (4, 0, 0), (4, 1, -1)]
    )
    def test_validation(self, height, n, halo):
        with pytest.raises(ValueError):
            split_rows(height, n, halo)


class TestExecutorValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            TileExecutor(workers=0)

    def test_bad_pool(self):
        with pytest.raises(ValueError):
            TileExecutor(pool="greenlet")

    def test_bad_tile_rows(self):
        with pytest.raises(ValueError):
            TileExecutor(tile_rows=0)

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            TileExecutor(precision="float16")

    def test_bad_transport(self):
        with pytest.raises(ValueError, match="transport"):
            TileExecutor(transport="carrier-pigeon")

    def test_shm_transport_requires_process_pool(self):
        with pytest.raises(ValueError, match="process"):
            TileExecutor(workers=2, pool="thread", transport="shm")

    def test_tile_rows_auto_accepted(self):
        assert TileExecutor(tile_rows="auto").tile_rows == "auto"
        with pytest.raises(ValueError):
            TileExecutor(tile_rows="adaptive")

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            TileExecutor().kernel("orb")

    def test_kernel_accessor_names(self):
        ex = TileExecutor()
        for name in available_kernels():
            assert callable(ex.kernel(name))

    def test_sgm_paths_validated(self, frame):
        with pytest.raises(ValueError):
            TileExecutor().sgm(frame.left, frame.right, 8, paths=3)


class TestSeamEquivalence:
    """Tiled output must be bit-identical to whole-frame output."""

    @pytest.mark.parametrize("name", available_kernels())
    @pytest.mark.parametrize("tile_rows", [1, 4, 7])
    def test_many_small_bands(self, frame, references, name, tile_rows):
        # tile_rows as small as one row: far below MAX_DISP and RADIUS,
        # which must not matter — the search is horizontal, the bands
        # keep full width, and the halo covers the filter window
        with TileExecutor(workers=2, pool="thread", tile_rows=tile_rows) as ex:
            assert np.array_equal(_tiled(ex, name, frame), references[name])

    @pytest.mark.parametrize("name", available_kernels())
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_band_per_worker(self, frame, references, name, workers):
        with TileExecutor(workers=workers, pool="thread") as ex:
            assert np.array_equal(_tiled(ex, name, frame), references[name])

    @pytest.mark.parametrize("name", available_kernels())
    def test_single_worker_is_whole_frame(self, frame, references, name):
        assert np.array_equal(
            _tiled(TileExecutor(), name, frame), references[name]
        )

    def test_process_pool_identical(self, frame, references):
        with TileExecutor(workers=2, pool="process") as ex:
            for name in ("bm", "sgm"):
                assert np.array_equal(_tiled(ex, name, frame), references[name])

    @pytest.mark.parametrize("name", available_kernels())
    def test_float32_tiling_identical(self, frame, name):
        want = _REFERENCE[name](frame, precision="float32")
        with TileExecutor(
            workers=2, pool="thread", tile_rows=5, precision="float32"
        ) as ex:
            assert np.array_equal(_tiled(ex, name, frame), want)

    def test_single_row_image(self):
        rng = np.random.default_rng(0)
        left, right = rng.normal(size=(2, 1, 30))
        with TileExecutor(workers=3, pool="thread") as ex:
            assert np.array_equal(
                ex.block_match(left, right, 8),
                block_match(left, right, 8),
            )


class _StubPool:
    """Records the peak number of in-flight (submitted, unconsumed)
    futures; results resolve synchronously."""

    def __init__(self):
        self.pending = 0
        self.peak = 0
        self.submitted = 0

    def submit(self, fn, *args):
        self.pending += 1
        self.submitted += 1
        self.peak = max(self.peak, self.pending)
        pool = self

        class _Future:
            def result(_self):
                pool.pending -= 1
                return fn(*args)

        return _Future()

    def shutdown(self):
        pass


class TestBoundedSubmission:
    """Regression: `_iter_map` must not submit every job eagerly.

    Eager submission held all 8 pickled SGM cost-volume copies in
    flight at once; the fix bounds in-flight submissions to the
    worker count."""

    def test_peak_in_flight_is_worker_count(self):
        ex = TileExecutor(workers=3, pool="thread", transport="pickle")
        stub = _StubPool()
        ex._pool = stub
        jobs = [(i,) for i in range(11)]
        assert ex._map(lambda i: i * 2, jobs) == [2 * i for i in range(11)]
        assert stub.submitted == 11
        assert stub.peak == 3  # never more than `workers` in flight

    def test_single_job_runs_inline(self):
        ex = TileExecutor(workers=3, pool="thread", transport="pickle")
        stub = _StubPool()
        ex._pool = stub
        assert ex._map(lambda i: i + 1, [(41,)]) == [42]
        assert stub.submitted == 0  # one job never touches the pool

    def test_results_stay_in_job_order(self):
        ex = TileExecutor(workers=2, pool="thread", transport="pickle")
        ex._pool = _StubPool()
        jobs = [(i,) for i in range(7)]
        assert ex._map(lambda i: i, jobs) == list(range(7))


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
class TestSharedMemoryTransport:
    """The shm transport must be invisible: bit-identical results for
    every kernel, band count and precision, and no leaked segments."""

    def _segments(self):
        shm_dir = Path("/dev/shm")
        if not shm_dir.exists():  # non-Linux: can't audit by name
            return None
        return set(glob.glob("/dev/shm/asv_*"))

    @pytest.mark.parametrize("name", available_kernels())
    @pytest.mark.parametrize("tile_rows", [3, 7, None])
    def test_seams_identical(self, frame, references, name, tile_rows):
        with TileExecutor(
            workers=2, pool="process", tile_rows=tile_rows, transport="shm"
        ) as ex:
            assert np.array_equal(_tiled(ex, name, frame), references[name])

    @pytest.mark.parametrize("name", available_kernels())
    def test_float32_identical(self, frame, name):
        want = _REFERENCE[name](frame, precision="float32")
        with TileExecutor(
            workers=2, pool="process", tile_rows=5,
            precision="float32", transport="shm",
        ) as ex:
            assert np.array_equal(_tiled(ex, name, frame), want)

    def test_auto_transport_matches_pickle(self, frame, references):
        for transport in ("auto", "pickle"):
            with TileExecutor(
                workers=2, pool="process", tile_rows=6, transport=transport
            ) as ex:
                assert np.array_equal(_tiled(ex, "sgm", frame), references["sgm"])

    def test_no_leaked_segments(self, frame):
        before = self._segments()
        with TileExecutor(workers=2, pool="process", transport="shm") as ex:
            for name in available_kernels():
                _tiled(ex, name, frame)
        after = self._segments()
        if before is not None:
            assert after <= before, f"leaked shm segments: {after - before}"


class TestQualityProbeWorkers:
    def test_probe_scores_identical_across_workers(self):
        stream = lambda: sceneflow_stream(
            seed=3, size=(32, 48), n_frames=4, max_disp=16, pw=2
        )
        serial = QualityProbe(matcher="bm", max_disp=16).score_plan(stream())
        tiled = QualityProbe(
            matcher="bm", max_disp=16, workers=2, pool="thread"
        ).score_plan(stream())
        assert serial.frames == tiled.frames  # bit-identical scores

    def test_probe_float32_runs(self):
        q = QualityProbe(
            matcher="census", max_disp=16, precision="float32"
        ).score_plan(
            sceneflow_stream(seed=5, size=(32, 48), n_frames=2, max_disp=16)
        )
        assert np.isfinite(q.epe_px)

    def test_probe_repr_reports_workers(self):
        assert "workers=3" in repr(
            QualityProbe(matcher="bm", workers=3, pool="thread")
        )

    def test_probe_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            QualityProbe(matcher="bm", precision="bf16")

    def test_probe_context_manager_closes_executor(self):
        with QualityProbe(matcher="bm", workers=2, pool="thread") as probe:
            probe.score_plan(sceneflow_stream(
                seed=1, size=(32, 48), n_frames=2, max_disp=16))
            assert probe.executor._pool is not None
        assert probe.executor._pool is None
        probe.close()  # idempotent


class TestFlowSeamEquivalence:
    """The tiled non-key flow kernels: every banding, pool, transport
    and precision must be bit-identical to the single-core functions."""

    @pytest.fixture(scope="class")
    def frames(self):
        scene = sceneflow_scene(31, size=(63, 82), max_disp=12, max_speed=2.0)
        return scene.render(0), scene.render(1)

    @pytest.fixture(scope="class")
    def flow_reference(self, frames):
        f0, f1 = frames
        return farneback_flow(f0.left, f1.left, levels=3, iterations=2,
                              window_sigma=2.5)

    @pytest.mark.parametrize("tile_rows", [1, 4, 7])
    def test_poly_expansion_many_small_bands(self, frames, tile_rows):
        img = np.asarray(frames[0].left, dtype=np.float64)
        A_ref, b_ref = poly_expansion(img)
        with TileExecutor(workers=3, pool="thread", tile_rows=tile_rows) as ex:
            A, b = ex.poly_expansion(img)
        assert np.array_equal(A, A_ref)
        assert np.array_equal(b, b_ref)

    @pytest.mark.parametrize("tile_rows", [1, 5, 9])
    def test_flow_iteration_bands(self, frames, tile_rows):
        f0, f1 = frames
        A1, b1 = poly_expansion(np.asarray(f0.left, dtype=np.float64))
        A2, b2 = poly_expansion(np.asarray(f1.left, dtype=np.float64))
        flow = np.zeros(A1.shape[:2] + (2,))
        ref = flow_iteration(A1, b1, A2, b2, flow, window_sigma=2.5)
        with TileExecutor(workers=3, pool="thread", tile_rows=tile_rows) as ex:
            got = ex.flow_iteration(A1, b1, A2, b2, flow, window_sigma=2.5)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_farneback_flow_thread_pool(self, frames, flow_reference, workers):
        f0, f1 = frames
        with TileExecutor(workers=workers, pool="thread", tile_rows=6) as ex:
            got = ex.farneback_flow(f0.left, f1.left, levels=3, iterations=2,
                                    window_sigma=2.5)
        assert np.array_equal(got, flow_reference)

    def test_farneback_flow_process_pickle(self, frames, flow_reference):
        f0, f1 = frames
        with TileExecutor(workers=2, pool="process", tile_rows=8,
                          transport="pickle") as ex:
            got = ex.farneback_flow(f0.left, f1.left, levels=3, iterations=2,
                                    window_sigma=2.5)
        assert np.array_equal(got, flow_reference)

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
    def test_farneback_flow_shm(self, frames, flow_reference):
        f0, f1 = frames
        with TileExecutor(workers=2, pool="process", tile_rows=7,
                          transport="shm") as ex:
            got = ex.farneback_flow(f0.left, f1.left, levels=3, iterations=2,
                                    window_sigma=2.5)
        assert np.array_equal(got, flow_reference)

    def test_float32_tiling_identical(self, frames):
        f0, f1 = frames
        ref = farneback_flow(f0.left, f1.left, levels=2, iterations=2,
                             precision="float32")
        with TileExecutor(workers=3, pool="thread", tile_rows=5,
                          precision="float32") as ex:
            got = ex.farneback_flow(f0.left, f1.left, levels=2, iterations=2)
        assert got.dtype == np.float32
        assert np.array_equal(got, ref)

    def test_expansion_object_interchangeable(self, frames):
        """Executor-built expansions are bit-identical to single-core
        ones, so the ISM cache can mix the two freely."""
        from repro.flow import expand_frame, flow_from_expansions

        f0, f1 = frames
        with TileExecutor(workers=2, pool="thread", tile_rows=6) as ex:
            tiled_exp = ex.expand_frame(f0.left, levels=2)
        plain_exp = expand_frame(f0.left, levels=2)
        assert tiled_exp.shapes == plain_exp.shapes
        for (At, bt), (Ap, bp) in zip(tiled_exp.coeffs, plain_exp.coeffs):
            assert np.array_equal(At, Ap)
            assert np.array_equal(bt, bp)
        other = expand_frame(f1.left, levels=2)
        assert np.array_equal(
            flow_from_expansions(tiled_exp, other),
            flow_from_expansions(plain_exp, other),
        )

    def test_ism_with_executor_flow_bitwise(self, frames):
        """An ISM whose flow= is a multi-worker executor serves the
        same disparities as the plain single-core ISM."""
        from repro.core import ISM, ISMConfig

        video = sceneflow_scene(
            32, size=(63, 82), max_disp=12, max_speed=2.0
        ).sequence(3)
        config = ISMConfig(propagation_window=4)
        plain = ISM(dnn=lambda f: f.disparity, config=config).run_sequence(video)
        with TileExecutor(workers=2, pool="thread", tile_rows=8) as ex:
            tiled = ISM(
                dnn=lambda f: f.disparity, config=config,
                refiner=ex.guided_block_match, flow=ex,
            ).run_sequence(video)
        for a, b in zip(plain.disparities, tiled.disparities):
            assert np.array_equal(a, b)
