"""Equivalence tests for the deconvolution-to-convolution transformation.

These verify the paper's central claim of Sec. 4.1: a sparse
deconvolution equals a gather over dense sub-convolutions, for arbitrary
kernels, strides, paddings and dimensionality.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deconv.transform import (
    decompose_geometry,
    decompose_kernel,
    deconv_via_subconvolutions,
    transformed_specs,
)
from repro.nn.ops import deconvnd
from repro.nn.workload import ConvSpec


class TestDecomposeKernel:
    def test_paper_fig6_subkernels(self):
        """3x3 kernel, stride 2 -> sub-kernels of 2x2, 1x2, 2x1, 1x1."""
        a, b, c, d, e, f, g, h, i = np.arange(1.0, 10.0)
        w = np.array([[[[a, b, c], [d, e, f], [g, h, i]]]])
        subs = decompose_kernel(w, 2)
        assert set(subs.keys()) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert np.array_equal(subs[(0, 0)][0, 0], [[a, c], [g, i]])
        assert np.array_equal(subs[(1, 0)][0, 0], [[d, f]])
        assert np.array_equal(subs[(0, 1)][0, 0], [[b], [h]])
        assert np.array_equal(subs[(1, 1)][0, 0], [[e]])

    def test_partition_no_loss_no_duplication(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(2, 3, 5, 4))
        subs = decompose_kernel(w, 2)
        total = sum(s.size for s in subs.values())
        assert total == w.size
        # element sums must match exactly (partition, not just count)
        assert np.isclose(sum(s.sum() for s in subs.values()), w.sum())

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(1, 6),
        stride=st.integers(1, 4),
        ndim=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_partition_property_nd(self, k, stride, ndim, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(1, 1) + (k,) * ndim)
        subs = decompose_kernel(w, stride)
        assert sum(s.size for s in subs.values()) == w.size
        n_classes = min(stride, k) ** ndim
        assert len(subs) == n_classes

    def test_stride1_is_identity(self):
        w = np.random.default_rng(1).normal(size=(1, 1, 3, 3))
        subs = decompose_kernel(w, 1)
        assert list(subs.keys()) == [(0, 0)]
        assert np.array_equal(subs[(0, 0)], w)


class TestDecomposeGeometry:
    def test_fig6_geometry(self):
        subs = decompose_geometry((3, 3), 2, 1, (3, 3))
        by_delta = {s.delta: s for s in subs}
        assert by_delta[(0, 0)].kernel == (2, 2)
        assert by_delta[(1, 1)].kernel == (1, 1)
        # ofmap is 5x5; parity (1,1) covers positions 0,2,4 => 3x3 outputs
        assert by_delta[(1, 1)].out_size == (3, 3)
        assert by_delta[(0, 0)].out_size == (2, 2)
        # outputs tile the 5x5 ofmap exactly
        total = sum(s.outputs for s in subs)
        assert total == 25

    def test_output_positions_partition_ofmap(self):
        for k, s, p, n in [(4, 2, 1, 6), (3, 2, 0, 5), (5, 3, 2, 4), (2, 2, 0, 4)]:
            spec = ConvSpec("d", 1, 1, (k, k), (n, n), s, p, deconv=True)
            subs = decompose_geometry((k, k), s, p, (n, n))
            covered = np.zeros(spec.output_size, dtype=int)
            for sub in subs:
                sl = tuple(
                    slice(r, r + cnt * st_, st_)
                    for r, cnt, st_ in zip(sub.offset, sub.out_size, (s, s))
                )
                covered[sl] += 1
            assert (covered == 1).all(), (k, s, p, n)

    def test_taps_and_outputs_match_spec_effective_macs(self):
        spec = ConvSpec("d", 4, 8, (4, 4), (9, 7), 2, 1, deconv=True)
        subs = decompose_geometry(spec.kernel, spec.stride, spec.padding, spec.input_size)
        total = sum(s.taps * s.outputs for s in subs) * 4 * 8
        assert total == spec.macs_effective


class TestNumericEquivalence:
    def test_paper_example(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 3, 3))
        w = rng.normal(size=(1, 1, 3, 3))
        ref = deconvnd(x, w, stride=2, padding=1)
        ours = deconv_via_subconvolutions(x, w, stride=2, padding=1)
        assert np.allclose(ref, ours)

    @pytest.mark.parametrize(
        "k,s,p,shape",
        [
            (3, 2, 1, (2, 5, 6)),
            (4, 2, 1, (3, 8, 8)),   # DispNet/FlowNetC-style upconv
            (5, 2, 2, (1, 6, 4)),
            (3, 2, 0, (2, 4, 4)),
            (2, 2, 0, (1, 7, 7)),
            (3, 1, 1, (2, 5, 5)),   # stride-1 degenerate case
            (5, 3, 2, (1, 5, 5)),   # stride-3
            (2, 3, 0, (1, 4, 4)),   # kernel < stride: empty parity classes
        ],
    )
    def test_2d_configs(self, k, s, p, shape):
        rng = np.random.default_rng(k * 100 + s * 10 + p)
        x = rng.normal(size=shape)
        w = rng.normal(size=(3, shape[0], k, k))
        ref = deconvnd(x, w, stride=s, padding=p)
        ours = deconv_via_subconvolutions(x, w, stride=s, padding=p)
        assert np.allclose(ref, ours)

    def test_3d_gcnet_style(self):
        """3x3x3 stride-2 3-D deconvolution (GC-Net / PSMNet DR layers)."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 4, 5, 6))
        w = rng.normal(size=(3, 2, 3, 3, 3))
        ref = deconvnd(x, w, stride=2, padding=1)
        ours = deconv_via_subconvolutions(x, w, stride=2, padding=1)
        assert np.allclose(ref, ours)

    def test_output_padding(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 5, 5))
        w = rng.normal(size=(2, 1, 3, 3))
        ref = deconvnd(x, w, stride=2, padding=1, output_padding=1)
        ours = deconv_via_subconvolutions(x, w, stride=2, padding=1, output_padding=1)
        assert np.allclose(ref, ours)

    def test_anisotropic_stride(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 6, 6))
        w = rng.normal(size=(1, 1, 3, 4))
        ref = deconvnd(x, w, stride=(2, 3), padding=(1, 1))
        ours = deconv_via_subconvolutions(x, w, stride=(2, 3), padding=(1, 1))
        assert np.allclose(ref, ours)

    @settings(max_examples=60, deadline=None)
    @given(
        h=st.integers(2, 6),
        w_=st.integers(2, 6),
        cin=st.integers(1, 3),
        cout=st.integers(1, 3),
        kh=st.integers(1, 5),
        kw=st.integers(1, 5),
        stride=st.integers(1, 3),
        pad_frac=st.integers(0, 2),
        seed=st.integers(0, 10_000),
    )
    def test_equivalence_property_2d(
        self, h, w_, cin, cout, kh, kw, stride, pad_frac, seed
    ):
        """The core claim: transformation is exact for random geometry."""
        from hypothesis import assume

        p = min(pad_frac, min(kh, kw) - 1)
        # skip geometries whose deconvolution output collapses to zero
        assume((h - 1) * stride - 2 * p + kh >= 1)
        assume((w_ - 1) * stride - 2 * p + kw >= 1)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(cin, h, w_))
        w = rng.normal(size=(cout, cin, kh, kw))
        ref = deconvnd(x, w, stride=stride, padding=p)
        ours = deconv_via_subconvolutions(x, w, stride=stride, padding=p)
        assert np.allclose(ref, ours)

    @settings(max_examples=20, deadline=None)
    @given(
        d=st.integers(2, 4),
        h=st.integers(2, 4),
        w_=st.integers(2, 4),
        k=st.integers(2, 3),
        stride=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )
    def test_equivalence_property_3d(self, d, h, w_, k, stride, seed):
        p = min(1, k - 1)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, d, h, w_))
        w = rng.normal(size=(2, 1, k, k, k))
        ref = deconvnd(x, w, stride=stride, padding=p)
        ours = deconv_via_subconvolutions(x, w, stride=stride, padding=p)
        assert np.allclose(ref, ours)


class TestTransformedSpecs:
    def test_conv_passthrough(self):
        spec = ConvSpec("c", 3, 8, (3, 3), (16, 16), 1, 1)
        assert transformed_specs(spec) == [spec]

    def test_deconv_split_count(self):
        spec = ConvSpec("d", 3, 8, (4, 4), (16, 16), 2, 1, deconv=True)
        subs = transformed_specs(spec)
        assert len(subs) == 4
        assert all(not s.deconv for s in subs)
        assert all(s.stride == (1, 1) for s in subs)

    def test_3d_split_count(self):
        spec = ConvSpec(
            "d3", 4, 4, (3, 3, 3), (8, 16, 16), 2, 1, deconv=True
        )
        subs = transformed_specs(spec)
        assert len(subs) == 8

    def test_macs_preserved(self):
        """Transformed MAC total equals the spec's effective MACs."""
        for k, s, p in [(3, 2, 1), (4, 2, 1), (5, 3, 2), (2, 2, 0)]:
            spec = ConvSpec("d", 6, 12, (k, k), (14, 10), s, p, deconv=True)
            subs = transformed_specs(spec)
            assert sum(sub.macs for sub in subs) == spec.macs_effective

    def test_output_elements_preserved(self):
        spec = ConvSpec("d", 2, 4, (4, 4), (8, 8), 2, 1, deconv=True)
        subs = transformed_specs(spec)
        assert sum(sub.ofmap_elems for sub in subs) == spec.ofmap_elems

    def test_stage_and_repeat_propagate(self):
        spec = ConvSpec(
            "d", 2, 4, (4, 4), (8, 8), 2, 1, deconv=True, stage="DR", repeat=3
        )
        subs = transformed_specs(spec)
        assert all(s.stage == "DR" and s.repeat == 3 for s in subs)

    def test_mac_reduction_factor(self):
        """Dense vs transformed compute: ~4x for 2-D, ~8x for 3-D stride 2."""
        d2 = ConvSpec("a", 8, 8, (4, 4), (32, 32), 2, 1, deconv=True)
        d3 = ConvSpec("b", 8, 8, (4, 4, 4), (16, 32, 32), 2, 1, deconv=True)
        r2 = d2.macs / sum(s.macs for s in transformed_specs(d2))
        r3 = d3.macs / sum(s.macs for s in transformed_specs(d3))
        assert 3.5 < r2 < 4.5
        assert 7.0 < r3 < 9.0
