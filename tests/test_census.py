"""Tests for the census-transform matching cost."""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.stereo import (
    census_block_match,
    census_transform,
    error_rate,
    hamming_cost_volume,
)
from repro.stereo.census import _POPCOUNT_TABLE, _popcount64
from tests.test_stereo_matchers import synthetic_pair


def _census_loop_reference(img, window):
    """Scalar uint64 shift/or loop the byte-plane transform replaced."""
    img = np.asarray(img, dtype=np.float64)
    r = window // 2
    h, w = img.shape
    padded = np.pad(img, r, mode="edge")
    code = np.zeros((h, w), dtype=np.uint64)
    bit = np.uint64(0)
    for dy in range(-r, r + 1):
        for dx in range(-r, r + 1):
            if dy == 0 and dx == 0:
                continue
            neighbour = padded[r + dy : r + dy + h, r + dx : r + dx + w]
            code |= (neighbour < img).astype(np.uint64) << bit
            bit += np.uint64(1)
    return code


class TestCensusTransform:
    def test_constant_image_zero_code(self):
        code = census_transform(np.full((10, 10), 5.0))
        assert (code == 0).all()

    def test_code_shape_and_dtype(self):
        img = np.random.default_rng(0).normal(size=(12, 16))
        code = census_transform(img, window=5)
        assert code.shape == (12, 16)
        assert code.dtype == np.uint64

    def test_monotonic_brightness_invariance(self):
        """The defining census property: any monotonic intensity map
        leaves the code unchanged."""
        img = np.random.default_rng(1).normal(size=(20, 20))
        warped = 3.0 * img + 7.0
        assert np.array_equal(census_transform(img), census_transform(warped))

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            census_transform(np.zeros((8, 8)), window=4)

    def test_too_large_window_rejected(self):
        with pytest.raises(ValueError):
            census_transform(np.zeros((16, 16)), window=11)

    def test_bit_semantics(self):
        """A single dark pixel sets exactly the neighbour bits of the
        pixels around it."""
        img = np.ones((7, 7))
        img[3, 3] = 0.0
        code = census_transform(img, window=3)
        assert code[3, 3] == 0           # all neighbours brighter
        assert code[3, 2] != 0           # sees the dark pixel

    @pytest.mark.parametrize("window", [3, 5, 7])
    @pytest.mark.parametrize(
        "shape", [(23, 36), (1, 30), (30, 1), (5, 5), (96, 160)]
    )
    def test_byteplane_matches_scalar_loop(self, shape, window):
        """The byte-plane transform must reproduce the scalar uint64
        shift/or loop exactly — same bit order, every shape including
        one-row and one-column images."""
        img = np.random.default_rng(hash(shape) % 2**32).normal(size=shape)
        assert np.array_equal(
            census_transform(img, window), _census_loop_reference(img, window)
        )


class TestPopcount:
    def test_matches_table_fallback(self):
        """The ``np.bitwise_count`` fast path and the byte-table
        fallback must agree on arbitrary 64-bit patterns."""
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2**63, size=(64,), dtype=np.int64).view(np.uint64)
        x[0], x[1] = np.uint64(0), np.uint64(2**64 - 1)
        table = _POPCOUNT_TABLE[
            np.ascontiguousarray(x).view(np.uint8).reshape(x.shape + (8,))
        ].sum(axis=-1)
        got = _popcount64(x)
        assert np.array_equal(got.astype(np.uint64), table.astype(np.uint64))
        assert int(got[0]) == 0 and int(got[1]) == 64

    def test_matches_python_bit_count(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 2**63, size=(3, 7), dtype=np.int64).view(np.uint64)
        want = np.vectorize(lambda v: int(v).bit_count())(x)
        assert np.array_equal(_popcount64(x).astype(int), want)


class TestPrecomputedRightCodes:
    def test_cost_volume_identical(self):
        left, right = synthetic_pair(d=4, size=(30, 50), seed=6)
        codes = census_transform(right, window=5)
        direct = hamming_cost_volume(left, right, 10, window=5)
        via_codes = hamming_cost_volume(
            left, None, 10, window=5, right_codes=codes
        )
        assert np.array_equal(direct, via_codes)

    def test_block_match_identical(self):
        left, right = synthetic_pair(d=4, size=(30, 50), seed=7)
        codes = census_transform(right, window=7)
        assert np.array_equal(
            census_block_match(left, right, 10, window=7),
            census_block_match(left, None, 10, window=7, right_codes=codes),
        )

    def test_right_ignored_when_codes_given(self):
        left, right = synthetic_pair(d=3, size=(20, 40), seed=8)
        codes = census_transform(right)
        garbage = np.zeros_like(right)
        assert np.array_equal(
            hamming_cost_volume(left, garbage, 8, right_codes=codes),
            hamming_cost_volume(left, right, 8),
        )

    def test_missing_both_rejected(self):
        with pytest.raises(ValueError, match="right or right_codes"):
            hamming_cost_volume(np.zeros((8, 8)), None, 4)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError, match="uint64"):
            hamming_cost_volume(
                np.zeros((8, 8)), None, 4,
                right_codes=np.zeros((8, 8), dtype=np.int64),
            )

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            hamming_cost_volume(
                np.zeros((8, 8)), None, 4,
                right_codes=np.zeros((4, 8), dtype=np.uint64),
            )


class TestHammingCost:
    def test_recovers_uniform_disparity(self):
        left, right = synthetic_pair(d=5, size=(50, 90), seed=2)
        disp = census_block_match(left, right, 10, window=7)
        inner = disp[6:-6, 6:-11]
        assert np.abs(inner - 5).mean() < 1.0

    def test_robust_to_brightness_change_where_sad_is_not(self):
        """Gain/offset between the two cameras: census keeps matching,
        SAD degrades badly."""
        from repro.stereo import block_match

        left, right = synthetic_pair(d=5, size=(60, 100), seed=3)
        right_warped = 2.5 * right + 1.0
        gt = np.full(left.shape, 5.0)
        census_err = error_rate(
            census_block_match(left, right_warped, 10, window=7), gt
        )
        sad_err = error_rate(block_match(left, right_warped, 10), gt)
        assert census_err < sad_err * 0.5

    def test_cost_volume_shape(self):
        frame = sceneflow_scene(1, size=(48, 80)).render(0)
        cost = hamming_cost_volume(frame.left, frame.right, 8)
        assert cost.shape == (8, 48, 80)

    def test_invalid_max_disp(self):
        with pytest.raises(ValueError):
            hamming_cost_volume(np.zeros((8, 8)), np.zeros((8, 8)), 0)

    def test_scene_accuracy_reasonable(self):
        frame = sceneflow_scene(9, size=(100, 180)).render(0)
        disp = census_block_match(frame.left, frame.right, 48, window=7)
        assert error_rate(disp, frame.disparity) < 30.0
