"""Tests for the census-transform matching cost."""

import numpy as np
import pytest

from repro.datasets import sceneflow_scene
from repro.stereo import (
    census_block_match,
    census_transform,
    error_rate,
    hamming_cost_volume,
)
from tests.test_stereo_matchers import synthetic_pair


class TestCensusTransform:
    def test_constant_image_zero_code(self):
        code = census_transform(np.full((10, 10), 5.0))
        assert (code == 0).all()

    def test_code_shape_and_dtype(self):
        img = np.random.default_rng(0).normal(size=(12, 16))
        code = census_transform(img, window=5)
        assert code.shape == (12, 16)
        assert code.dtype == np.uint64

    def test_monotonic_brightness_invariance(self):
        """The defining census property: any monotonic intensity map
        leaves the code unchanged."""
        img = np.random.default_rng(1).normal(size=(20, 20))
        warped = 3.0 * img + 7.0
        assert np.array_equal(census_transform(img), census_transform(warped))

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            census_transform(np.zeros((8, 8)), window=4)

    def test_too_large_window_rejected(self):
        with pytest.raises(ValueError):
            census_transform(np.zeros((16, 16)), window=11)

    def test_bit_semantics(self):
        """A single dark pixel sets exactly the neighbour bits of the
        pixels around it."""
        img = np.ones((7, 7))
        img[3, 3] = 0.0
        code = census_transform(img, window=3)
        assert code[3, 3] == 0           # all neighbours brighter
        assert code[3, 2] != 0           # sees the dark pixel


class TestHammingCost:
    def test_recovers_uniform_disparity(self):
        left, right = synthetic_pair(d=5, size=(50, 90), seed=2)
        disp = census_block_match(left, right, 10, window=7)
        inner = disp[6:-6, 6:-11]
        assert np.abs(inner - 5).mean() < 1.0

    def test_robust_to_brightness_change_where_sad_is_not(self):
        """Gain/offset between the two cameras: census keeps matching,
        SAD degrades badly."""
        from repro.stereo import block_match

        left, right = synthetic_pair(d=5, size=(60, 100), seed=3)
        right_warped = 2.5 * right + 1.0
        gt = np.full(left.shape, 5.0)
        census_err = error_rate(
            census_block_match(left, right_warped, 10, window=7), gt
        )
        sad_err = error_rate(block_match(left, right_warped, 10), gt)
        assert census_err < sad_err * 0.5

    def test_cost_volume_shape(self):
        frame = sceneflow_scene(1, size=(48, 80)).render(0)
        cost = hamming_cost_volume(frame.left, frame.right, 8)
        assert cost.shape == (8, 48, 80)

    def test_invalid_max_disp(self):
        with pytest.raises(ValueError):
            hamming_cost_volume(np.zeros((8, 8)), np.zeros((8, 8)), 0)

    def test_scene_accuracy_reasonable(self):
        frame = sceneflow_scene(9, size=(100, 180)).render(0)
        disp = census_block_match(frame.left, frame.right, 48, window=7)
        assert error_rate(disp, frame.disparity) < 30.0
