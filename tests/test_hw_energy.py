"""Tests for the energy model and breakdown arithmetic."""

import pytest

from repro.hw import ENERGY_16NM, EnergyBreakdown, EnergyModel


class TestEnergyModel:
    def test_relative_cost_hierarchy(self):
        """The relationship that drives every result: DRAM >> SRAM >> RF
        per byte, and SRAM byte >> one MAC."""
        m = ENERGY_16NM
        assert m.dram_j_per_byte > 20 * m.sram_j_per_byte
        assert m.sram_j_per_byte > 5 * m.rf_j_per_byte
        assert m.sram_j_per_byte > m.mac_j

    def test_linear_accounting(self):
        m = EnergyModel()
        assert m.compute(2e9) == pytest.approx(2 * m.compute(1e9))
        assert m.dram(1024) == pytest.approx(1024 * m.dram_j_per_byte)
        assert m.sram(0) == 0.0

    def test_static_energy(self):
        m = EnergyModel(static_w=0.1)
        assert m.static(2.0) == pytest.approx(0.2)

    def test_custom_model(self):
        m = EnergyModel(mac_j=1e-12)
        assert m.compute(1e12) == pytest.approx(1.0)


class TestEnergyBreakdown:
    def test_total_is_sum(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert b.total_j == 15.0

    def test_addition(self):
        a = EnergyBreakdown(mac_j=1.0, dram_j=2.0)
        b = EnergyBreakdown(mac_j=0.5, sram_j=1.5)
        c = a + b
        assert c.mac_j == 1.5
        assert c.sram_j == 1.5
        assert c.dram_j == 2.0
        assert c.total_j == pytest.approx(a.total_j + b.total_j)

    def test_default_zero(self):
        assert EnergyBreakdown().total_j == 0.0

    def test_dram_dominates_streaming_workloads(self):
        """For a workload that streams every operand from DRAM (one use
        per byte), DRAM energy must dominate the budget — the physical
        fact that motivates reuse optimization."""
        m = ENERGY_16NM
        macs = 1e9
        bytes_ = 2 * macs  # every MAC pulls one fresh 16-bit operand
        b = EnergyBreakdown(
            mac_j=m.compute(macs),
            sram_j=m.sram(bytes_),
            rf_j=m.rf(2 * macs * 2),
            dram_j=m.dram(bytes_),
        )
        assert b.dram_j > 0.9 * (b.mac_j + b.sram_j + b.rf_j)
