"""asvlint — repo-specific static analysis for the ASV reproduction.

An AST-based linter whose rules encode the invariants the optimization
PRs earned the hard way: seeded determinism (ASV001), shared-memory
lifecycle (ASV002), precision-knob threading (ASV003), registry/doc
sync (ASV004), and bounded pool submission (ASV005).  Run it as::

    python -m tools.asvlint src

or programmatically:

>>> from tools.asvlint import lint_source
>>> [v.code for v in lint_source("import time\\nt = time.time()\\n")]
['ASV001']

Rules register through :func:`register_rule`, mirroring
``repro.backends.registry``; ``docs/static-analysis.md`` is the
catalog.  The package also ships the dynamic determinism canary
(:mod:`tools.asvlint.canary`, ``--canary``) that complements the
static pass.
"""

from tools.asvlint.engine import (
    LintContext,
    Rule,
    Violation,
    available_rules,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
)
from tools.asvlint import rules as _builtin_rules  # noqa: F401  (self-registering)
from tools.asvlint.canary import canary_reports, run_canary

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "canary_reports",
    "run_canary",
]
