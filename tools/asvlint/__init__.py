"""asvlint — repo-specific static analysis for the ASV reproduction.

An AST-based linter whose rules encode the invariants the optimization
PRs earned the hard way: seeded determinism (ASV001), shared-memory
lifecycle (ASV002), precision-knob threading (ASV003), registry/doc
sync (ASV004), bounded pool submission (ASV005) — and, flow-sensitively,
halo sufficiency (ASV006), shm write-region safety (ASV007) and lock
discipline (ASV008).  Run it as::

    python -m tools.asvlint src

or programmatically:

>>> from tools.asvlint import lint_source
>>> [v.code for v in lint_source("import time\\nt = time.time()\\n")]
['ASV001']

Rules register through :func:`register_rule`, mirroring
``repro.backends.registry``; ``docs/static-analysis.md`` is the
catalog.  Flow-sensitive rules build on the exported dataflow core —
:func:`build_cfg` + :func:`solve` over a custom :class:`Domain` — see
the "Flow-sensitive rules" section of the catalog for a worked
third-party example.  The package also ships the dynamic determinism
canary (:mod:`tools.asvlint.canary`, ``--canary``) that complements
the static pass.
"""

from tools.asvlint.engine import (
    LintContext,
    Rule,
    Violation,
    available_rules,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
)
from tools.asvlint import rules as _builtin_rules  # noqa: F401  (self-registering)
from tools.asvlint import rules_concurrency as _conc_rules  # noqa: F401
from tools.asvlint import rules_stencil as _stencil_rules  # noqa: F401
from tools.asvlint.canary import canary_reports, run_canary
from tools.asvlint.cfg import CFG, Node, build_cfg, may_raise
from tools.asvlint.dataflow import BOTTOM, Domain, solve

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "canary_reports",
    "run_canary",
    "CFG",
    "Node",
    "build_cfg",
    "may_raise",
    "BOTTOM",
    "Domain",
    "solve",
]
