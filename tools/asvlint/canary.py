"""The determinism canary: one seeded chaos scenario, run twice, diffed.

The static :class:`~tools.asvlint.rules.DeterminismRule` catches the
*sources* of nondeterminism it knows about; the canary catches the ones
it doesn't.  It serves a fixed fleet through
:class:`~repro.cluster.faults.ChaosClusterEngine` under a pinned fault
schedule (a mid-run crash plus a seeded flaky window — every
deterministic code path the chaos loop has: failover, re-key, retries),
renders the full cluster report twice from scratch, and demands the two
renders be **byte-for-byte identical**.  Any unseeded draw, wall-clock
read, or hash-order dependence anywhere under the serving stack shows
up as a diff.

Run it via ``python -m tools.asvlint --canary`` (CI does) or through
``tests/test_asvlint.py``.
"""

from __future__ import annotations

import pathlib
import sys

__all__ = ["canary_reports", "run_canary"]


def _ensure_repro_importable() -> None:
    """Fall back to the in-tree ``src/`` when ``repro`` is not installed.

    The static pass never imports the code it checks, so the bare CLI
    works anywhere; only the canary executes the serving stack.
    """
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        if (src / "repro").is_dir():
            sys.path.insert(0, str(src))


def canary_reports(n_frames: int = 10, seed: int = 9) -> tuple[str, str]:
    """Render the canary scenario twice, from two fresh engines."""
    _ensure_repro_importable()
    from repro.cluster import (
        ChaosClusterEngine,
        CrashFault,
        FaultSchedule,
        FlakyFault,
        format_cluster_report,
    )
    from repro.pipeline import FrameStream

    def render() -> str:
        schedule = FaultSchedule(
            faults=(
                CrashFault("gpu:0", at_s=0.05),
                FlakyFault("gpu:1", start_s=0.0, duration_s=0.4, failure_rate=0.3),
            ),
            seed=seed,
        )
        engine = ChaosClusterEngine(
            ["gpu", "gpu"], policy="round-robin", faults=schedule
        )
        streams = [
            FrameStream(
                f"cam{i}",
                size=(68, 120),
                n_frames=n_frames,
                deadline_s=0.05,
                mode="baseline",
            )
            for i in range(4)
        ]
        return format_cluster_report(engine.run(streams))

    return render(), render()


def run_canary(n_frames: int = 10, seed: int = 9) -> int:
    """CLI body: 0 when the two renders match, 1 (plus a diff) when not."""
    first, second = canary_reports(n_frames=n_frames, seed=seed)
    if first == second:
        print(f"determinism canary OK: {len(first)} report bytes, identical twice")
        return 0
    import difflib

    print("determinism canary FAILED: two runs of the same seeded scenario differ")
    for line in difflib.unified_diff(
        first.splitlines(), second.splitlines(), "run-1", "run-2", lineterm=""
    ):
        print(line)
    return 1
