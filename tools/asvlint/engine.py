"""The asvlint engine: rule registry, suppression parsing, file walking.

``asvlint`` statically enforces the invariants this repo's reproduction
claims rest on (seeded determinism, shared-memory lifecycle, precision
threading, registry/doc sync, bounded pool submission).  The engine is
deliberately small: it parses each file once with :mod:`ast`, hands the
tree to every registered :class:`Rule` whose scope matches the file's
package path, and filters the returned :class:`Violation` objects
through the file's suppression comments.

Rules plug in exactly like execution backends plug into
``repro.backends.registry``::

    @register_rule
    class MyRule(Rule):
        code = "ASV999"
        name = "my-invariant"
        ...

Suppression syntax (checked by ``tests/test_asvlint.py``):

* ``# asvlint: disable=ASV001`` — suppress the named code(s) on this
  physical line (put it on the *first* line of a multi-line statement;
  comma-separate multiple codes).
* ``# asvlint: disable-file=ASV002`` — suppress the code(s) for the
  whole file, wherever the comment appears.
* ``all`` is accepted in place of a code list.

Suppressions should carry a justification in the trailing free text;
the linter does not parse it, reviewers do.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import time
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

__all__ = [
    "Violation",
    "LintContext",
    "Rule",
    "register_rule",
    "available_rules",
    "get_rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" [fix: {self.hint}]"
        return text

    def render_github(self) -> str:
        """GitHub Actions annotation form (``::error file=...``)."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{self.message}"
        )


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    path: str                      #: path as reported in violations
    rel: str                       #: package-relative posix path ("repro/cluster/faults.py")
    source: str
    tree: ast.AST
    repo_root: pathlib.Path | None = None  #: for rules that read docs/
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield enclosing nodes, innermost first."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def violation(
        self, node: ast.AST, code: str, message: str, hint: str = ""
    ) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            hint=hint,
        )


class Rule:
    """Base class for asvlint rules.

    Subclasses set ``code`` (``"ASV00x"``), ``name`` (a short slug),
    ``rationale`` (which PR/invariant motivated the rule), ``hint``
    (the autofix direction reported with every violation) and
    ``scope`` — a tuple of package-path prefixes the rule applies to,
    or ``None`` for every file.  ``check`` receives a
    :class:`LintContext` and yields :class:`Violation` objects.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""
    scope: tuple[str, ...] | None = None

    def applies_to(self, rel: str) -> bool:
        if self.scope is None:
            return True
        return any(rel.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: LintContext) -> Iterable[Violation]:  # pragma: no cover
        raise NotImplementedError


_RULES: dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule instance to the registry.

    Mirrors ``repro.backends.registry.register_backend``: rules are
    requested by code, and third-party rules plug in the same way the
    built-ins do.

    >>> @register_rule
    ... class DocRule(Rule):
    ...     code = "ASV900"
    ...     name = "doc-example"
    ...     def check(self, ctx):
    ...         return ()
    >>> "ASV900" in available_rules()
    True
    >>> _ = _RULES.pop("ASV900")  # keep the example side-effect-free
    """
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} must define a code")
    _RULES[rule.code] = rule
    return cls


def available_rules() -> tuple[str, ...]:
    """Sorted codes of every registered rule."""
    _load_builtins()
    return tuple(sorted(_RULES))


def get_rule(code: str) -> Rule:
    """Look a rule up by code (``ValueError`` on a miss)."""
    _load_builtins()
    try:
        return _RULES[code]
    except KeyError:
        raise ValueError(
            f"unknown rule {code!r}; available: {available_rules()}"
        ) from None


def _load_builtins() -> None:
    from tools.asvlint import rules as _builtin_rules  # noqa: F401  (self-registering)
    from tools.asvlint import rules_concurrency as _conc_rules  # noqa: F401
    from tools.asvlint import rules_stencil as _stencil_rules  # noqa: F401


_SUPPRESS = re.compile(
    r"#\s*asvlint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _suppressions(source: str) -> tuple[dict[str, set[int]], set[str]]:
    """Parse suppression comments.

    Returns ``(per_line, per_file)`` where ``per_line`` maps an upper-
    cased code to the set of physical lines it is disabled on, and
    ``per_file`` is the set of codes disabled for the whole file.
    ``ALL`` is a wildcard entry.
    """
    per_line: dict[str, set[int]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse already passed
        comments = []
    for line, text in comments:
        match = _SUPPRESS.search(text)
        if not match:
            continue
        codes = {c.strip().upper() for c in match.group(2).split(",") if c.strip()}
        if match.group(1) == "disable-file":
            per_file |= codes
        else:
            for code in codes:
                per_line.setdefault(code, set()).add(line)
    return per_line, per_file


def _suppressed(v: Violation, per_line: dict[str, set[int]], per_file: set[str]) -> bool:
    if "ALL" in per_file or v.code in per_file:
        return True
    for key in (v.code, "ALL"):
        if v.line in per_line.get(key, set()):
            return True
    return False


def package_rel(path: pathlib.Path) -> str:
    """The package-relative posix path rules scope on.

    Everything from the last ``repro`` (or ``tools``) component onward;
    the bare filename when neither appears (fixture snippets pass an
    explicit ``rel`` instead).

    >>> package_rel(pathlib.Path("src/repro/cluster/faults.py"))
    'repro/cluster/faults.py'
    >>> package_rel(pathlib.Path("scratch/snippet.py"))
    'snippet.py'
    """
    parts = path.parts
    for anchor in ("repro", "tools"):
        if anchor in parts:
            return "/".join(parts[len(parts) - 1 - parts[::-1].index(anchor):])
    return path.name


def lint_source(
    source: str,
    rel: str = "snippet.py",
    path: str | None = None,
    repo_root: pathlib.Path | None = None,
    select: Iterable[str] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Violation]:
    """Lint one source string (the fixture-test entry point).

    ``rel`` positions the snippet inside the package tree for scope
    matching; ``select`` restricts checking to the given rule codes;
    ``timings`` (if given) accumulates per-rule wall time by code.
    """
    tree = ast.parse(source)
    ctx = LintContext(
        path=path if path is not None else rel,
        rel=rel,
        source=source,
        tree=tree,
        repo_root=repo_root,
    )
    per_line, per_file = _suppressions(source)
    codes = tuple(select) if select is not None else available_rules()
    found: list[Violation] = []
    for code in codes:
        rule = get_rule(code)
        if not rule.applies_to(rel):
            continue
        start = time.perf_counter()
        found.extend(v for v in rule.check(ctx) if not _suppressed(v, per_line, per_file))
        if timings is not None:
            timings[code] = timings.get(code, 0.0) + time.perf_counter() - start
    return sorted(found)


def iter_python_files(paths: Iterable[str | pathlib.Path]) -> Iterator[pathlib.Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[str | pathlib.Path],
    repo_root: pathlib.Path | None = None,
    select: Iterable[str] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Violation]:
    """Lint files and directories; returns sorted violations.

    ``repo_root`` defaults to the common parent holding ``docs/`` if
    one is found above the first path (the registry-drift rule reads
    it); syntax errors and unreadable files surface as ``ASV000``
    violations rather than crashing the run.
    """
    paths = list(paths)
    if repo_root is None:
        repo_root = _find_repo_root(paths)
    found: list[Violation] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            # e.g. a broken symlink or a stray non-UTF-8 file: diagnose
            # and keep linting the rest of the tree
            found.append(
                Violation(
                    path=str(file),
                    line=1,
                    col=0,
                    code="ASV000",
                    message=f"unreadable file: {exc}",
                    hint="remove the broken symlink or fix the encoding",
                )
            )
            continue
        try:
            found.extend(
                lint_source(
                    source,
                    rel=package_rel(file),
                    path=str(file),
                    repo_root=repo_root,
                    select=select,
                    timings=timings,
                )
            )
        except SyntaxError as exc:
            found.append(
                Violation(
                    path=str(file),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="ASV000",
                    message=f"syntax error: {exc.msg}",
                )
            )
    return sorted(found)


def _find_repo_root(paths: list[str | pathlib.Path]) -> pathlib.Path | None:
    start = pathlib.Path(paths[0]).resolve() if paths else pathlib.Path.cwd()
    for candidate in (start, *start.parents):
        if (candidate / "docs").is_dir():
            return candidate
    return None
