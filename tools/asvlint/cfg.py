"""Intra-procedural control-flow graphs over :mod:`ast`.

``build_cfg`` turns one function body into a :class:`CFG` of
per-statement nodes with labelled edges: branches (``true``/``false``),
loop back edges (``back``), ``break``/``continue``, exception edges
(``except``) into handler/finally regions, and ``with`` bodies.  Three
synthetic nodes anchor the graph: ``entry``, ``exit`` (normal return)
and ``raise`` (the exceptional exit an uncaught exception escapes
through).

The exception model is deliberately conservative: any statement
containing a call, ``raise`` or ``assert`` *may* raise, and a
``finally`` block — built once — exits both to the normal successor
and back into exception propagation (the builder does not track which
way a ``finally`` was entered).  Over-approximating reachability is
the right bias for the flow-sensitive rules built on top: they must
never certify a path the runtime could take.

The graph is consumed by :mod:`tools.asvlint.dataflow`'s worklist
solver and directly (reachability queries) by the ASV007/ASV008 rules;
``describe()`` renders a stable one-line-per-node topology for the
golden tests in ``tests/test_asvlint_dataflow.py``.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["CFG", "Node", "build_cfg", "may_raise"]


@dataclass
class Node:
    """One CFG node: a statement, or a synthetic entry/exit marker."""

    idx: int
    kind: str                  #: "entry" | "exit" | "raise" | "stmt" | "join"
    stmt: ast.stmt | None = None
    label: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.idx}, {self.label})"


@dataclass
class CFG:
    """A labelled digraph over the statements of one function."""

    nodes: list[Node] = field(default_factory=list)
    succ: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    pred: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    #: statement id -> node index (per-statement granularity)
    stmt_nodes: dict[int, int] = field(default_factory=dict, repr=False)

    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def add_node(self, kind: str, stmt: ast.stmt | None = None, label: str = "") -> int:
        idx = len(self.nodes)
        if not label:
            if stmt is not None:
                label = f"{type(stmt).__name__}@{getattr(stmt, 'lineno', 0)}"
            else:
                label = kind
        self.nodes.append(Node(idx, kind, stmt, label))
        self.succ[idx] = []
        self.pred[idx] = []
        if stmt is not None and id(stmt) not in self.stmt_nodes:
            self.stmt_nodes[id(stmt)] = idx
        return idx

    def add_edge(self, u: int, v: int, label: str = "next") -> None:
        if (v, label) not in self.succ[u]:
            self.succ[u].append((v, label))
            self.pred[v].append((u, label))

    def node_of(self, stmt: ast.stmt) -> int | None:
        """The node index of a statement (``None`` if unreachable code
        was pruned or the statement belongs to a nested function)."""
        return self.stmt_nodes.get(id(stmt))

    def reachable(
        self,
        start: int,
        avoid: Iterable[int] = (),
        labels: Iterable[str] | None = None,
    ) -> set[int]:
        """Nodes reachable from ``start`` without entering ``avoid``.

        ``labels`` restricts traversal to edges with those labels;
        ``start`` itself is included (unless in ``avoid``).
        """
        blocked = set(avoid)
        allowed = None if labels is None else set(labels)
        if start in blocked:
            return set()
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v, lbl in self.succ[u]:
                if v in seen or v in blocked:
                    continue
                if allowed is not None and lbl not in allowed:
                    continue
                seen.add(v)
                queue.append(v)
        return seen

    def describe(self) -> list[str]:
        """One stable line per node: ``idx label -> succ:label, ...``."""
        lines = []
        for node in self.nodes:
            succs = ", ".join(
                f"{v}:{lbl}" for v, lbl in sorted(self.succ[node.idx])
            )
            lines.append(f"{node.idx} {node.label} -> [{succs}]")
        return lines


def may_raise(stmt: ast.stmt) -> bool:
    """Whether a statement may raise (conservative: any call does).

    Nested function/class bodies are opaque — defining them cannot
    raise on their behalf.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # only the definition-time expressions run when the def executes
        at_def_time: list[ast.expr] = list(stmt.decorator_list)
        if isinstance(stmt, ast.ClassDef):
            at_def_time += [*stmt.bases, *(kw.value for kw in stmt.keywords)]
        else:
            a = stmt.args
            at_def_time += [d for d in (*a.defaults, *a.kw_defaults) if d is not None]
        return any(
            isinstance(node, (ast.Call, ast.Await))
            for expr in at_def_time
            for node in ast.walk(expr)
        )
    for node in _walk_shallow(stmt):
        if isinstance(node, (ast.Call, ast.Await, ast.Raise, ast.Assert)):
            return True
    return False


def _walk_shallow(stmt: ast.stmt):
    """ast.walk that does not descend into nested function/class bodies."""
    queue = deque([stmt])
    while queue:
        node = queue.popleft()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            queue.append(child)


#: a dangling out-edge waiting for its target: (node index, edge label)
_Frontier = list[tuple[int, str]]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add_node("entry")
        self.cfg.add_node("exit")
        self.cfg.add_node("raise")
        #: innermost-last stack of (loop header idx, break frontier)
        self.loops: list[tuple[int, _Frontier]] = []
        #: innermost-last stack of exception-edge targets
        self.exc: list[int] = [self.cfg.raise_exit]

    # -- plumbing ------------------------------------------------------
    def connect(self, frontier: _Frontier, target: int) -> None:
        for u, lbl in frontier:
            self.cfg.add_edge(u, target, lbl)

    def exc_edge(self, idx: int, stmt: ast.stmt) -> None:
        if may_raise(stmt):
            self.cfg.add_edge(idx, self.exc[-1], "except")

    def stmts(self, body: list[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in body:
            frontier = self.stmt(stmt, frontier)
        return frontier

    # -- statement dispatch --------------------------------------------
    def stmt(self, s: ast.stmt, frontier: _Frontier) -> _Frontier:
        cfg = self.cfg
        if isinstance(s, ast.If):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            self.exc_edge(idx, s)
            then = self.stmts(s.body, [(idx, "true")])
            if s.orelse:
                other = self.stmts(s.orelse, [(idx, "false")])
            else:
                other = [(idx, "false")]
            return then + other
        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            self.exc_edge(idx, s)
            breaks: _Frontier = []
            self.loops.append((idx, breaks))
            body_end = self.stmts(s.body, [(idx, "true")])
            self.loops.pop()
            for u, lbl in body_end:
                cfg.add_edge(u, idx, "back")
            exits: _Frontier = [(idx, "false")]
            if s.orelse:
                exits = self.stmts(s.orelse, exits)
            return exits + breaks
        if isinstance(s, (ast.With, ast.AsyncWith)):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            self.exc_edge(idx, s)
            return self.stmts(s.body, [(idx, "body")])
        if isinstance(s, ast.Try):
            return self.try_stmt(s, frontier)
        if isinstance(s, ast.Return):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            self.exc_edge(idx, s)
            cfg.add_edge(idx, cfg.exit, "return")
            return []
        if isinstance(s, ast.Raise):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            cfg.add_edge(idx, self.exc[-1], "except")
            return []
        if isinstance(s, ast.Break):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            if self.loops:
                self.loops[-1][1].append((idx, "break"))
            return []
        if isinstance(s, ast.Continue):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            if self.loops:
                cfg.add_edge(idx, self.loops[-1][0], "continue")
            return []
        if isinstance(s, ast.Match):
            idx = cfg.add_node("stmt", s)
            self.connect(frontier, idx)
            self.exc_edge(idx, s)
            out: _Frontier = [(idx, "nomatch")]
            for case in s.cases:
                out += self.stmts(case.body, [(idx, "case")])
            return out
        # simple statement (assign, expr, assert, import, def, ...)
        idx = cfg.add_node("stmt", s)
        self.connect(frontier, idx)
        self.exc_edge(idx, s)
        return [(idx, "next")]

    def try_stmt(self, s: ast.Try, frontier: _Frontier) -> _Frontier:
        cfg = self.cfg
        outer_exc = self.exc[-1]
        final_entry: int | None = None
        if s.finalbody:
            final_entry = cfg.add_node(
                "join", label=f"finally@{s.finalbody[0].lineno}"
            )
        dispatch: int | None = None
        if s.handlers:
            dispatch = cfg.add_node(
                "join", label=f"except-dispatch@{s.lineno}"
            )
        # exceptions in the body go to the handlers, else the finally,
        # else propagate out
        body_exc = dispatch if dispatch is not None else (
            final_entry if final_entry is not None else outer_exc
        )
        self.exc.append(body_exc)
        body_end = self.stmts(s.body, frontier)
        self.exc.pop()
        # handler and orelse exceptions skip this try's handlers
        inner_exc = final_entry if final_entry is not None else outer_exc
        ends: _Frontier = []
        if s.orelse:
            self.exc.append(inner_exc)
            ends += self.stmts(s.orelse, body_end)
            self.exc.pop()
        else:
            ends += body_end
        if dispatch is not None:
            self.exc.append(inner_exc)
            for handler in s.handlers:
                ends += self.stmts(handler.body, [(dispatch, "except")])
            self.exc.pop()
            # an exception no handler matches keeps propagating
            cfg.add_edge(dispatch, inner_exc, "except")
        if final_entry is not None:
            self.connect(ends, final_entry)
            self.exc.append(outer_exc)
            final_end = self.stmts(s.finalbody, [(final_entry, "next")])
            self.exc.pop()
            # conservative: the finally exits both normally and back
            # into exception propagation
            for u, _lbl in final_end:
                cfg.add_edge(u, outer_exc, "reraise")
            return final_end
        return ends


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition.

    >>> import ast
    >>> fn = ast.parse("def f(x):\\n    if x:\\n        return 1\\n    return 2").body[0]
    >>> cfg = build_cfg(fn)
    >>> sorted(lbl for _, lbl in cfg.succ[cfg.stmt_nodes[id(fn.body[0])]])
    ['false', 'true']
    """
    builder = _Builder()
    end = builder.stmts(fn.body, [(builder.cfg.entry, "next")])
    builder.connect(end, builder.cfg.exit)
    return builder.cfg
