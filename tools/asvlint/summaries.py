"""Per-module function summaries and stencil-footprint derivation.

ASV006 must answer two questions without running the kernels:

1. What vertical footprint does a kernel's *declared* stencil promise
   (the ``@stencil(...)`` decorator from :mod:`repro.parallel.tiles`)?
2. What footprint does the kernel's *body* actually have — how many
   rows above/below a pixel can its output depend on?

:class:`StencilSpec` answers the first: it mirrors the arithmetic of
``repro.parallel.tiles.Stencil`` (the formulas are intentionally
duplicated here so the linter never imports the code under analysis;
``tests/test_asvlint_dataflow.py`` pins the two implementations
against each other).

:class:`FootprintDeriver` answers the second with a best-effort
abstract evaluator over the AST: it recognises the repo's reach
primitives — vertical :func:`scipy.ndimage.correlate1d` sweeps (tap
arrays built via ``np.arange(-r, r + 1)`` / ``np.full(size, ...)``,
threaded through locals, tuple unpacks and helper returns),
``np.pad`` — and composes transitively through project-local calls,
resolved across modules by :class:`ProjectIndex`.  Calls into
functions that themselves declare a stencil short-circuit to the
declared halo (evaluated with the call-site arguments), so the
derivation is compositional.  Anything it cannot understand evaluates
to :data:`UNKNOWN` and contributes *nothing* to the derived footprint:
the result is a lower bound, which makes "derived > declared" a sound
violation but silence not a proof.

Both sides are compared numerically on a grid of sample parameter
values (:func:`sample_envs`) rather than symbolically — the parameter
spaces are tiny (odd windows, a handful of sigmas) and sampling keeps
the evaluator honest about integer arithmetic (``//``, ``round``).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "INFINITE",
    "UNKNOWN",
    "ModuleSummary",
    "ProjectIndex",
    "StencilSpec",
    "FootprintDeriver",
    "declared_stencil",
    "parse_stencil_expr",
    "sample_envs",
]

#: footprint of an untileable kernel (SGM's whole-image DP)
INFINITE = float("inf")


class _Unknown:
    """Sentinel for "the evaluator cannot determine this value".

    Distinct from Python ``None``, which is a perfectly evaluable
    constant (``radius=None`` selects a stencil's derived default).
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


UNKNOWN = _Unknown()

#: recursion limit for the abstract evaluator.  Real cycles are cut by
#: the per-function ``_active`` guard; this bounds pathological
#: self-referential local chains (``img = np.asarray(img)``), which
#: burn a few levels per round trip.  Legitimate chains (call-site ->
#: taps -> helper -> helper default) run ~20 levels deep.
_MAX_DEPTH = 64


# ----------------------------------------------------------------------
# module summaries and cross-module resolution
# ----------------------------------------------------------------------


class ModuleSummary:
    """Top-level names of one module: functions, classes, constants,
    imports — everything name resolution needs."""

    def __init__(self, tree: ast.Module, name: str = "") -> None:
        self.name = name
        self.tree = tree
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.assigns: dict[str, ast.expr] = {}
        #: local name -> (source module, original name | None for
        #: whole-module imports)
        self.imports: dict[str, tuple[str, str | None]] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self.assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self.assigns[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.imports[bound] = (alias.name, None)
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = (stmt.module, alias.name)


class ProjectIndex:
    """Lazily parsed module summaries for one repository.

    Modules are resolved from ``<repo_root>/src`` (the ``repro``
    package) and ``<repo_root>`` (the ``tools`` package) and cached;
    an index is itself cached per repo root so one lint run parses
    each imported module at most once across all files and rules.
    """

    _by_root: dict[str, "ProjectIndex"] = {}

    def __init__(self, repo_root: pathlib.Path | None) -> None:
        self.repo_root = repo_root
        self._modules: dict[str, ModuleSummary | None] = {}

    @classmethod
    def for_root(cls, repo_root: pathlib.Path | None) -> "ProjectIndex":
        key = str(repo_root) if repo_root is not None else ""
        if key not in cls._by_root:
            cls._by_root[key] = cls(repo_root)
        return cls._by_root[key]

    def module(self, dotted: str) -> ModuleSummary | None:
        if dotted in self._modules:
            return self._modules[dotted]
        summary: ModuleSummary | None = None
        if self.repo_root is not None:
            rel = pathlib.Path(*dotted.split("."))
            for base in (self.repo_root / "src", self.repo_root):
                for candidate in (
                    base / rel.with_suffix(".py"),
                    base / rel / "__init__.py",
                ):
                    if candidate.is_file():
                        try:
                            tree = ast.parse(candidate.read_text())
                        except (OSError, SyntaxError, UnicodeDecodeError):
                            continue
                        summary = ModuleSummary(tree, name=dotted)
                        break
                if summary is not None:
                    break
        self._modules[dotted] = summary
        return summary

    def resolve(
        self, module: ModuleSummary, name: str, hops: int = 4
    ) -> tuple[str, Any, ModuleSummary] | None:
        """Resolve a top-level name to ``(kind, payload, home_module)``.

        ``kind`` is ``"func"`` (payload: the FunctionDef), ``"const"``
        (payload: the assigned expression) or ``"class"``; import
        chains are followed up to ``hops`` modules deep.
        """
        for _ in range(hops):
            if name in module.functions:
                return ("func", module.functions[name], module)
            if name in module.assigns:
                return ("const", module.assigns[name], module)
            if name in module.classes:
                return ("class", module.classes[name], module)
            if name not in module.imports:
                return None
            mod_name, orig = module.imports[name]
            if orig is None:
                return None
            target = self.module(mod_name)
            if target is None:
                return None
            module, name = target, orig
        return None


# ----------------------------------------------------------------------
# declared stencils
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StencilSpec:
    """Static twin of ``repro.parallel.tiles.Stencil``."""

    kind: str
    param: str | None = None
    value: int = 0
    override: str | None = None

    @property
    def tileable(self) -> bool:
        return self.kind != "infinite"

    def params(self) -> tuple[str, ...]:
        """Kernel keyword names the halo computation reads."""
        names = []
        if self.param is not None:
            names.append(self.param)
        if self.override is not None:
            names.append(self.override)
        return tuple(names)

    def halo_value(self, env: dict[str, Any]) -> Any:
        """Halo for concrete parameter values (mirrors ``Stencil.halo``).

        Returns a number, :data:`INFINITE`, or :data:`UNKNOWN` when a
        needed parameter is absent or unknown.
        """
        if self.kind == "pointwise":
            return 0
        if self.kind == "fixed":
            return self.value
        if self.kind == "infinite":
            return INFINITE
        if self.override is not None:
            ov = env.get(self.override)
            if ov is UNKNOWN:
                return UNKNOWN
            if ov is not None:
                return int(ov)
        arg = env.get(self.param)
        if arg is None or arg is UNKNOWN or isinstance(arg, bool):
            return UNKNOWN
        if not isinstance(arg, (int, float)):
            return UNKNOWN
        if self.kind == "window":
            return int(arg) // 2
        if self.kind == "radius":
            return int(arg)
        if self.kind == "gaussian":
            return max(2, int(round(3.0 * arg)))
        if self.kind == "blur":
            return int(4.0 * arg + 0.5)
        return UNKNOWN  # pragma: no cover - exhaustive above

    def describe(self) -> str:
        if self.kind in ("pointwise", "infinite"):
            return f"Stencil.{self.kind}()"
        if self.kind == "fixed":
            return f"Stencil.fixed({self.value})"
        if self.override is not None:
            return f"Stencil.{self.kind}({self.param!r}, override={self.override!r})"
        return f"Stencil.{self.kind}({self.param!r})"


_STENCIL_CTORS = {
    "pointwise", "fixed", "window", "radius", "gaussian", "blur", "infinite",
}


def parse_stencil_expr(
    expr: ast.expr, module: ModuleSummary, index: ProjectIndex, hops: int = 4
) -> StencilSpec | None:
    """Parse ``Stencil.window("block_size")``-shaped expressions.

    Follows names (``BLOCK_STENCIL``) through module constants and
    import chains, so a call site in ``executor.py`` resolves the
    constant declared next to the kernel it wraps.
    """
    for _ in range(hops):
        if isinstance(expr, ast.Name):
            resolved = index.resolve(module, expr.id)
            if resolved is None or resolved[0] != "const":
                return None
            _, expr, module = resolved
            continue
        break
    if not (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and isinstance(expr.func.value, ast.Name)
        and expr.func.value.id == "Stencil"
        and expr.func.attr in _STENCIL_CTORS
    ):
        return None
    ctor = expr.func.attr
    args = [a.value for a in expr.args if isinstance(a, ast.Constant)]
    if len(args) != len(expr.args):
        return None
    kwargs = {
        kw.arg: kw.value.value
        for kw in expr.keywords
        if kw.arg is not None and isinstance(kw.value, ast.Constant)
    }
    try:
        if ctor in ("pointwise", "infinite"):
            return StencilSpec(kind=ctor)
        if ctor == "fixed":
            return StencilSpec(kind="fixed", value=int(args[0]))
        param = args[0] if args else kwargs.get("param")
        if not isinstance(param, str):
            return None
        override = kwargs.get("override")
        if not args and "param" not in kwargs:
            return None
        if ctor == "gaussian" and len(expr.args) > 1:
            override = args[1]
        if override is not None and not isinstance(override, str):
            return None
        return StencilSpec(kind=ctor, param=param, override=override)
    except (IndexError, TypeError, ValueError):
        return None


def declared_stencil(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleSummary,
    index: ProjectIndex,
) -> StencilSpec | None:
    """The spec attached by an ``@stencil(...)`` decorator, if any."""
    for dec in fn.decorator_list:
        if (
            isinstance(dec, ast.Call)
            and isinstance(dec.func, ast.Name)
            and dec.func.id == "stencil"
            and len(dec.args) == 1
        ):
            return parse_stencil_expr(dec.args[0], module, index)
    return None


def sample_envs(spec: StencilSpec) -> list[dict[str, Any]]:
    """Concrete parameter grids the declared/derived halos are compared
    on (odd windows up to 31, the sigmas the pipelines actually use)."""
    if spec.kind in ("pointwise", "fixed", "infinite"):
        return [{}]
    if spec.kind == "window":
        return [{spec.param: v} for v in (3, 5, 9, 15, 31)]
    if spec.kind == "radius":
        return [{spec.param: v} for v in (1, 2, 4, 8)]
    if spec.kind == "blur":
        return [{spec.param: v} for v in (0.5, 1.0, 2.0, 4.0)]
    # gaussian: the override (explicit radius) both absent and pinned
    envs: list[dict[str, Any]] = [
        {spec.param: v} for v in (0.5, 1.0, 1.5, 2.5, 4.0)
    ]
    if spec.override is not None:
        for env in envs:
            env[spec.override] = None
        envs.append({spec.param: 1.5, spec.override: 3})
        envs.append({spec.param: 1.5, spec.override: 7})
    return envs


# ----------------------------------------------------------------------
# the abstract evaluator
# ----------------------------------------------------------------------


@dataclass
class _Taps:
    """A 1-D filter-tap array whose reach radius is known."""

    radius: Any  # number or UNKNOWN


@dataclass
class _TupleVal:
    items: list[Any]


@dataclass
class _FuncVal:
    fn: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleSummary


@dataclass
class _ModuleVal:
    name: str


@dataclass
class _Builtin:
    name: str


class _Lazy:
    """A deferred expression evaluation (argument thunk)."""

    __slots__ = ("expr", "frame", "_value", "_done")

    def __init__(self, expr: ast.expr, frame: "_Frame") -> None:
        self.expr = expr
        self.frame = frame
        self._done = False
        self._value: Any = UNKNOWN


@dataclass
class _Frame:
    """One evaluation scope: a module, optionally a function, and the
    function's parameter bindings."""

    module: ModuleSummary
    fn: ast.FunctionDef | ast.AsyncFunctionDef | None
    bindings: dict[str, Any]


_BUILTIN_NAMES = {"max", "min", "int", "round", "abs", "float", "len"}

#: numpy ufuncs that preserve a tap array's support elementwise
_ELEMENTWISE = {"exp", "abs", "asarray", "ascontiguousarray", "astype"}

_VERTICAL_AXES = (0, -2)


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = fn.args
    return [p.arg for p in (*a.posonlyargs, *a.args)]


def _attr_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _walk_shallow(node: ast.AST):
    """Walk skipping nested function/class bodies."""
    queue = [node]
    while queue:
        cur = queue.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            queue.append(child)


class FootprintDeriver:
    """Best-effort evaluator for stencil parameters and body footprints."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._active: set[tuple[str, str]] = set()

    # -- value evaluation ----------------------------------------------

    def eval(self, expr: ast.expr, frame: _Frame, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            return UNKNOWN
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name):
            return self._eval_name(expr.id, frame, depth)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame, depth)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, frame, depth)
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval(expr.operand, frame, depth + 1)
            if isinstance(operand, (int, float)) and not isinstance(operand, bool):
                if isinstance(expr.op, ast.USub):
                    return -operand
                if isinstance(expr.op, ast.UAdd):
                    return +operand
            if isinstance(expr.op, ast.Not) and isinstance(operand, bool):
                return not operand
            return UNKNOWN
        if isinstance(expr, ast.IfExp):
            test = self.eval(expr.test, frame, depth + 1)
            if test is True:
                return self.eval(expr.body, frame, depth + 1)
            if test is False:
                return self.eval(expr.orelse, frame, depth + 1)
            return UNKNOWN
        if isinstance(expr, ast.Compare):
            return self._eval_compare(expr, frame, depth)
        if isinstance(expr, ast.Tuple):
            return _TupleVal([_Lazy(e, frame) for e in expr.elts])
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value, frame, depth + 1)
            idx = self.eval(expr.slice, frame, depth + 1)
            if isinstance(base, _TupleVal) and isinstance(idx, int):
                if 0 <= idx < len(base.items):
                    return self._force(base.items[idx], depth + 1)
            return UNKNOWN
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is not None and len(chain) >= 2:
                root = self._eval_name(chain[0], frame, depth)
                if isinstance(root, _ModuleVal) and len(chain) == 2:
                    target = self.index.module(root.name)
                    if target is not None:
                        resolved = self.index.resolve(target, chain[1])
                        if resolved is not None:
                            kind, payload, home = resolved
                            if kind == "func":
                                return _FuncVal(payload, home)
                            if kind == "const":
                                return self.eval(
                                    payload, _Frame(home, None, {}), depth + 1
                                )
            return UNKNOWN
        return UNKNOWN

    def _force(self, value: Any, depth: int) -> Any:
        if isinstance(value, _Lazy):
            if not value._done:
                value._value = self.eval(value.expr, value.frame, depth + 1)
                value._done = True
            return value._value
        return value

    def _eval_name(self, name: str, frame: _Frame, depth: int) -> Any:
        if name in frame.bindings:
            value = self._force(frame.bindings[name], depth)
            if value is None and frame.fn is not None:
                default = self._conditional_default(name, frame.fn)
                if default is not None:
                    return self.eval(default, frame, depth + 1)
            return value
        if frame.fn is not None:
            local = self._local_assign(name, frame.fn)
            if local is not None:
                value_expr, tuple_index = local
                value = self.eval(value_expr, frame, depth + 1)
                if tuple_index is None:
                    return value
                if isinstance(value, _TupleVal) and tuple_index < len(value.items):
                    return self._force(value.items[tuple_index], depth + 1)
                return UNKNOWN
            if name in _param_names(frame.fn):
                return UNKNOWN  # parameter without a binding
        resolved = self.index.resolve(frame.module, name)
        if resolved is not None:
            kind, payload, home = resolved
            if kind == "func":
                return _FuncVal(payload, home)
            if kind == "const":
                return self.eval(payload, _Frame(home, None, {}), depth + 1)
            return UNKNOWN
        if name in frame.module.imports and frame.module.imports[name][1] is None:
            return _ModuleVal(frame.module.imports[name][0])
        if name in _BUILTIN_NAMES:
            return _Builtin(name)
        return UNKNOWN

    def _conditional_default(
        self, name: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ast.expr | None:
        """The ``E`` of an ``if name is None: name = E`` default idiom."""
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == name
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == name
                ):
                    return stmt.value
        return None

    def _local_assign(
        self, name: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[ast.expr, int | None] | None:
        """The unique plain/tuple assignment binding ``name`` in ``fn``.

        Ambiguous names (reassigned, loop targets, augmented) resolve
        to ``None`` — the evaluator then reports UNKNOWN rather than
        guessing which definition reaches a use.
        """
        found: tuple[ast.expr, int | None] | None = None
        count = 0
        for node in _walk_shallow(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                for target in _walk_shallow(node.target):
                    if isinstance(target, ast.Name) and target.id == name:
                        return None
            if isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    return None
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                # skip the `if x is None: x = ...` default; the param
                # lookup path applies it only when the bound value is None
                if self._is_conditional_default_assign(node, name, fn):
                    continue
                found = (node.value, None)
                count += 1
            elif isinstance(target, ast.Tuple):
                for i, elt in enumerate(target.elts):
                    if isinstance(elt, ast.Name) and elt.id == name:
                        found = (node.value, i)
                        count += 1
        return found if count == 1 else None

    def _is_conditional_default_assign(
        self, assign: ast.Assign, name: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        default = self._conditional_default(name, fn)
        return default is assign.value

    def _eval_binop(self, expr: ast.BinOp, frame: _Frame, depth: int) -> Any:
        left = self.eval(expr.left, frame, depth + 1)
        right = self.eval(expr.right, frame, depth + 1)
        taps = [v for v in (left, right) if isinstance(v, _Taps)]
        if taps:
            radii = [t.radius for t in taps if t.radius is not UNKNOWN]
            return _Taps(max(radii) if radii else UNKNOWN)
        if not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (left, right)
        ):
            return UNKNOWN
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Div):
                return left / right
            if isinstance(expr.op, ast.FloorDiv):
                return left // right
            if isinstance(expr.op, ast.Mod):
                return left % right
            if isinstance(expr.op, ast.Pow):
                return left ** right
        except (ZeroDivisionError, OverflowError, ValueError):
            return UNKNOWN
        return UNKNOWN

    def _eval_compare(self, expr: ast.Compare, frame: _Frame, depth: int) -> Any:
        if len(expr.ops) != 1:
            return UNKNOWN
        left = self.eval(expr.left, frame, depth + 1)
        right = self.eval(expr.comparators[0], frame, depth + 1)
        op = expr.ops[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            if left is UNKNOWN or right is not None:
                return UNKNOWN
            result = left is None
            return result if isinstance(op, ast.Is) else not result
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (left, right)
        )
        if not numeric:
            return UNKNOWN
        if isinstance(op, ast.Lt):
            return left < right
        if isinstance(op, ast.LtE):
            return left <= right
        if isinstance(op, ast.Gt):
            return left > right
        if isinstance(op, ast.GtE):
            return left >= right
        if isinstance(op, ast.Eq):
            return left == right
        if isinstance(op, ast.NotEq):
            return left != right
        return UNKNOWN

    def _eval_call(self, call: ast.Call, frame: _Frame, depth: int) -> Any:
        # Stencil.<ctor>(...) — a spec literal
        spec = parse_stencil_expr(call, frame.module, self.index, hops=0)
        if spec is not None:
            return spec
        func = call.func
        if isinstance(func, ast.Attribute):
            # <stencil>.halo(param=...) — evaluate the declared formula
            if func.attr == "halo":
                site = parse_stencil_expr(func.value, frame.module, self.index)
                if site is not None:
                    env = {
                        kw.arg: self.eval(kw.value, frame, depth + 1)
                        for kw in call.keywords
                        if kw.arg is not None
                    }
                    return site.halo_value(env)
            # tap-array builders and elementwise numpy propagation
            if func.attr == "arange":
                return self._eval_arange(call, frame, depth)
            if func.attr == "full" and call.args:
                size = self.eval(call.args[0], frame, depth + 1)
                if isinstance(size, int) and not isinstance(size, bool):
                    return _Taps(size // 2)
                return _Taps(UNKNOWN)
            if func.attr in _ELEMENTWISE and call.args:
                arg = self.eval(call.args[0], frame, depth + 1)
                if isinstance(arg, _Taps):
                    return arg
                return UNKNOWN
            target = self.eval(func, frame, depth + 1)
            if isinstance(target, _FuncVal):
                return self._call_function(target, call, frame, depth)
            return UNKNOWN
        if isinstance(func, ast.Name):
            if func.id == "arange":
                return self._eval_arange(call, frame, depth)
            target = self._eval_name(func.id, frame, depth)
            if isinstance(target, _Builtin):
                return self._call_builtin(target.name, call, frame, depth)
            if isinstance(target, _FuncVal):
                return self._call_function(target, call, frame, depth)
            if isinstance(target, StencilSpec):
                return UNKNOWN
        return UNKNOWN

    def _eval_arange(self, call: ast.Call, frame: _Frame, depth: int) -> Any:
        """``np.arange(-r, r + 1, ...)`` is a tap array of radius r."""
        if len(call.args) < 2:
            return UNKNOWN
        lo, hi = call.args[0], call.args[1]
        if not (
            isinstance(lo, ast.UnaryOp)
            and isinstance(lo.op, ast.USub)
            and isinstance(hi, ast.BinOp)
            and isinstance(hi.op, ast.Add)
            and isinstance(hi.right, ast.Constant)
            and hi.right.value == 1
            and ast.dump(lo.operand) == ast.dump(hi.left)
        ):
            return UNKNOWN
        radius = self.eval(lo.operand, frame, depth + 1)
        if isinstance(radius, (int, float)) and not isinstance(radius, bool):
            return _Taps(radius)
        return _Taps(UNKNOWN)

    def _call_builtin(
        self, name: str, call: ast.Call, frame: _Frame, depth: int
    ) -> Any:
        args = [self.eval(a, frame, depth + 1) for a in call.args]
        if any(
            not (isinstance(a, (int, float)) and not isinstance(a, bool))
            for a in args
        ) or not args:
            return UNKNOWN
        try:
            if name == "max":
                return max(args)
            if name == "min":
                return min(args)
            if name == "int":
                return int(args[0])
            if name == "round":
                return round(*args)
            if name == "abs":
                return abs(args[0])
            if name == "float":
                return float(args[0])
        except (TypeError, ValueError):
            return UNKNOWN
        return UNKNOWN

    def _bind_call(
        self, target: _FuncVal, call: ast.Call, frame: _Frame
    ) -> dict[str, Any]:
        """Parameter bindings for a call: positionals, keywords, then
        the callee's own defaults (evaluated in *its* module)."""
        params = _param_names(target.fn)
        bindings: dict[str, Any] = {}
        has_star = any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        )
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                bindings[params[i]] = _Lazy(arg, frame)
        for kw in call.keywords:
            if kw.arg is not None:
                bindings[kw.arg] = _Lazy(kw.value, frame)
        a = target.fn.args
        if has_star:
            # a *args/**kwargs splat may bind anything: parameters it
            # could cover must stay UNKNOWN, not take their defaults
            for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
                bindings.setdefault(p.arg, UNKNOWN)
            return bindings
        callee_frame = _Frame(target.module, None, {})
        positional = [*a.posonlyargs, *a.args]
        for p, default in zip(positional[len(positional) - len(a.defaults):], a.defaults):
            bindings.setdefault(p.arg, _Lazy(default, callee_frame))
        for p, default in zip(a.kwonlyargs, a.kw_defaults):
            if default is not None:
                bindings.setdefault(p.arg, _Lazy(default, callee_frame))
        return bindings

    def _call_function(
        self, target: _FuncVal, call: ast.Call, frame: _Frame, depth: int
    ) -> Any:
        key = (target.module.name, target.fn.name)
        if key in self._active or depth > _MAX_DEPTH:
            return UNKNOWN
        bindings = self._bind_call(target, call, frame)
        callee = _Frame(target.module, target.fn, bindings)
        returns = [
            node
            for node in _walk_shallow(target.fn)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if not returns:
            return UNKNOWN
        self._active.add(key)
        try:
            values = [self.eval(r.value, callee, depth + 1) for r in returns]
        finally:
            self._active.discard(key)
        if len(values) == 1:
            return values[0]
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        ):
            return max(values)
        real = [v for v in values if v is not UNKNOWN]
        if len(real) == 1:
            return real[0]
        return UNKNOWN

    # -- footprint derivation ------------------------------------------

    def reach(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleSummary,
        env: dict[str, Any],
        depth: int = 0,
    ) -> float:
        """Derived vertical footprint (rows) of ``fn`` for concrete
        parameter values ``env``.  A lower bound: unknown constructs
        contribute nothing."""
        key = (module.name, fn.name)
        if key in self._active or depth > _MAX_DEPTH:
            return 0
        frame = _Frame(module, fn, dict(env))
        self._active.add(key)
        try:
            return self._reach_frame(fn, frame, depth)
        finally:
            self._active.discard(key)

    def _reach_frame(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        frame: _Frame,
        depth: int,
    ) -> float:
        total = 0.0
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            contribution = self._call_reach(node, frame, depth)
            if contribution == INFINITE:
                return INFINITE
            total = max(total, contribution)
        return total

    def _call_reach(self, call: ast.Call, frame: _Frame, depth: int) -> float:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "correlate1d":
            return self._correlate_reach(call, frame, depth)
        if name == "pad" and len(call.args) >= 2:
            width = self.eval(call.args[1], frame, depth + 1)
            if isinstance(width, (int, float)) and not isinstance(width, bool):
                return float(width)
            return 0
        # project-local composition
        target: Any = UNKNOWN
        if isinstance(func, ast.Name):
            target = self._eval_name(func.id, frame, depth)
        elif isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is not None and len(chain) == 2 and chain[0] != "self":
                root = self._eval_name(chain[0], frame, depth)
                if isinstance(root, _ModuleVal):
                    target = self.eval(func, frame, depth + 1)
        if not isinstance(target, _FuncVal):
            return 0
        declared = declared_stencil(target.fn, target.module, self.index)
        if declared is not None:
            env: dict[str, Any] = {}
            bindings = self._bind_call(target, call, frame)
            for p in declared.params():
                env[p] = self._force(bindings[p], depth) if p in bindings else UNKNOWN
            halo = declared.halo_value(env)
            if halo is UNKNOWN:
                return 0
            return float(halo)
        bindings = self._bind_call(target, call, frame)
        callee = _Frame(target.module, target.fn, bindings)
        key = (target.module.name, target.fn.name)
        if key in self._active or depth > _MAX_DEPTH:
            return 0
        self._active.add(key)
        try:
            return self._reach_frame(target.fn, callee, depth + 1)
        finally:
            self._active.discard(key)

    def _correlate_reach(self, call: ast.Call, frame: _Frame, depth: int) -> float:
        axis_expr: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "axis":
                axis_expr = kw.value
        if axis_expr is None and len(call.args) >= 3:
            axis_expr = call.args[2]
        if axis_expr is None:
            return 0  # correlate1d defaults to axis=-1 (horizontal)
        axis = self.eval(axis_expr, frame, depth + 1)
        if isinstance(axis, int) and not isinstance(axis, bool):
            if axis not in _VERTICAL_AXES:
                return 0
        # unknown axis: conservatively treat as vertical
        weights: ast.expr | None = None
        if len(call.args) >= 2:
            weights = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "weights":
                    weights = kw.value
        if weights is None:
            return 0
        taps = self.eval(weights, frame, depth + 1)
        if isinstance(taps, _Taps) and isinstance(taps.radius, (int, float)):
            return float(taps.radius)
        return 0


def iter_stencilled_functions(
    module: ModuleSummary, index: ProjectIndex
) -> Iterable[tuple[ast.FunctionDef | ast.AsyncFunctionDef, StencilSpec]]:
    """Top-level functions of a module carrying ``@stencil`` decorators."""
    for fn in module.functions.values():
        spec = declared_stencil(fn, module, index)
        if spec is not None:
            yield fn, spec
