"""ASV007/ASV008 — flow-sensitive shared-memory and lock discipline.

ASV007 guards the shm band transport (``repro/parallel/``) with three
static analyses that mirror the runtime ``ASV_SHM_SANITIZE=1``
sanitizer:

* **overlap** — band jobs handed to ``_run_band_shm``/``_flow_band_shm``
  with statically-constant crop/start rows must write disjoint row
  ranges of the same output handle; two calls whose ranges overlap and
  that can both execute (CFG-reachable from one another) are exactly
  the race :func:`repro.parallel.shm.claim_region` trips on at runtime.
* **pending consumption** — an ``_iter_map`` iterator drives the band
  jobs lazily; reading an ``alloc``'d output view while the iterator
  has not been drained reads rows no job has written yet.  Tracked with
  a may-be-pending dataflow over the CFG (:mod:`tools.asvlint.dataflow`).
* **exception escape** — a ``ShmArena``/``SharedMemory`` acquired in a
  function that *does* clean it up on some path must have every
  may-raise statement between acquisition and cleanup covered by a
  ``finally``/handler that cleans up (or a ``with``): an exception edge
  that escapes past visible cleanup leaks a named ``/dev/shm`` segment.

ASV008 checks lock discipline everywhere: a field consistently accessed
under ``with self._lock`` in one method but reachable unguarded in
another is a data race the guarded method was written to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.asvlint.cfg import CFG, build_cfg, may_raise
from tools.asvlint.dataflow import Domain, solve
from tools.asvlint.engine import LintContext, Rule, Violation, register_rule

__all__ = ["ShmWriteRegionRule", "LockDisciplineRule"]

#: worker entry points whose argument tuples carry (crop, out, start)
_BAND_WORKERS = {
    "_run_band_shm": (5, 7, 8),
    "_flow_band_shm": (4, 5, 6),
}

_ARENA_CTORS = {"ShmArena", "SharedMemory"}

_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__post_init__"}


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _stmt_node(ctx: LintContext, cfg: CFG, node: ast.AST) -> int | None:
    """The CFG node of the statement containing ``node``."""
    cur: ast.AST | None = node
    while cur is not None:
        if isinstance(cur, ast.stmt):
            idx = cfg.node_of(cur)
            if idx is not None:
                return idx
        cur = ctx.parent(cur)
    return None


# ----------------------------------------------------------------------
# ASV007a: statically-overlapping band write regions
# ----------------------------------------------------------------------


def _const_int(node: ast.expr | None) -> int | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def _write_interval(args: list[ast.expr], slots: tuple[int, int, int]):
    """(out-expr dump, row interval) of one band job's argument list."""
    crop_i, out_i, start_i = slots
    if len(args) <= max(slots):
        return None
    crop = args[crop_i]
    start = _const_int(args[start_i])
    if start is None or not (isinstance(crop, ast.Tuple) and len(crop.elts) == 2):
        return None
    lo, hi = _const_int(crop.elts[0]), _const_int(crop.elts[1])
    if lo is None or hi is None:
        return None
    return ast.dump(args[out_i]), (start, start + (hi - lo))


def _band_jobs(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """(call/tuple node, out dump, interval) for every statically-known
    band job in ``fn``: direct worker calls, plus literal job-tuple
    lists handed to a map over a worker."""
    jobs = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _BAND_WORKERS:
            extracted = _write_interval(node.args, _BAND_WORKERS[name])
            if extracted is not None:
                jobs.append((node, *extracted))
        elif name in ("_iter_map", "_map", "map", "starmap") and node.args:
            worker = node.args[0]
            wname = None
            if isinstance(worker, ast.Attribute):
                wname = worker.attr
            elif isinstance(worker, ast.Name):
                wname = worker.id
            if wname not in _BAND_WORKERS or len(node.args) < 2:
                continue
            arg = node.args[1]
            if not isinstance(arg, (ast.List, ast.Tuple)):
                continue
            for elt in arg.elts:
                if isinstance(elt, ast.Tuple):
                    extracted = _write_interval(
                        list(elt.elts), _BAND_WORKERS[wname]
                    )
                    if extracted is not None:
                        jobs.append((elt, *extracted))
    return jobs


def _overlap_violations(
    ctx: LintContext, fn: ast.FunctionDef | ast.AsyncFunctionDef, cfg: CFG
) -> Iterator[Violation]:
    jobs = _band_jobs(fn)
    for i in range(len(jobs)):
        for j in range(i + 1, len(jobs)):
            node_a, out_a, (lo_a, hi_a) = jobs[i]
            node_b, out_b, (lo_b, hi_b) = jobs[j]
            if out_a != out_b or max(lo_a, lo_b) >= min(hi_a, hi_b):
                continue
            idx_a = _stmt_node(ctx, cfg, node_a)
            idx_b = _stmt_node(ctx, cfg, node_b)
            if idx_a is None or idx_b is None:
                continue
            if idx_a != idx_b and not (
                idx_b in cfg.reachable(idx_a) or idx_a in cfg.reachable(idx_b)
            ):
                continue  # exclusive branches never both run
            later = node_b if node_b.lineno >= node_a.lineno else node_a
            yield ctx.violation(
                later, "ASV007",
                f"band jobs write overlapping rows [{lo_a}, {hi_a}) and "
                f"[{lo_b}, {hi_b}) of the same output segment; band row "
                "ranges must partition the output",
                hint="derive band bounds from split_rows so interiors are "
                "disjoint",
            )


# ----------------------------------------------------------------------
# ASV007b: reading an output view while band jobs are still pending
# ----------------------------------------------------------------------


class _PendingDomain(Domain):
    """Which lazily-driven job iterators may still be unconsumed."""

    def __init__(self, gens: frozenset[str]):
        self.gens = gens

    def initial(self):
        return frozenset()

    def top(self):
        return self.gens

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        stmt = node.stmt
        if stmt is None:
            return state
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and _call_name(stmt.value) == "_iter_map"
        ):
            return state | {stmt.targets[0].id}
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
            stmt.iter, ast.Name
        ):
            return state - {stmt.iter.id}
        consumed = set()
        for call in ast.walk(stmt):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id in ("list", "tuple")
                and len(call.args) == 1
                and isinstance(call.args[0], ast.Name)
            ):
                consumed.add(call.args[0].id)
        return state - consumed if consumed else state


def _pending_violations(
    ctx: LintContext, fn: ast.FunctionDef | ast.AsyncFunctionDef, cfg: CFG
) -> Iterator[Violation]:
    gens = set()
    views = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        name = _call_name(node.value)
        target = node.targets[0] if len(node.targets) == 1 else None
        if name == "_iter_map" and isinstance(target, ast.Name):
            gens.add(target.id)
        elif (
            name == "alloc"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            views.add(target.elts[1].id)
    if not gens or not views:
        return
    states = solve(cfg, _PendingDomain(frozenset(gens)))
    for node in cfg.nodes:
        stmt = node.stmt
        entry = states.get(node.idx)
        if stmt is None or not isinstance(entry, frozenset) or not entry:
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
            stmt.iter, ast.Name
        ):
            continue  # draining the iterator is the consumption itself
        for ref in ast.walk(stmt):
            if (
                isinstance(ref, ast.Name)
                and isinstance(ref.ctx, ast.Load)
                and ref.id in views
            ):
                pending = ", ".join(sorted(entry))
                yield ctx.violation(
                    ref, "ASV007",
                    f"output view {ref.id!r} is read while the band-job "
                    f"iterator {pending!r} may not be fully consumed; "
                    "unconsumed jobs have not written their rows yet",
                    hint="drain the job iterator (for _ in jobs / "
                    "list(jobs)) before touching the output view",
                )
                break


# ----------------------------------------------------------------------
# ASV007c: acquisitions whose cleanup an exception edge can skip
# ----------------------------------------------------------------------


def _acquisitions(fn) -> list[tuple[ast.Assign, str]]:
    out = []
    for node in ast.walk(fn):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for cand in candidates:
            if isinstance(cand, ast.Call) and _call_name(cand) in _ARENA_CTORS:
                out.append((node, node.targets[0].id))
                break
    return out


def _clears_var(stmt: ast.stmt, var: str) -> bool:
    """Whether a statement visibly hands off or releases ``var``."""
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.context_expr, ast.Name) and item.context_expr.id == var:
                return True
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        if any(
            isinstance(n, ast.Name) and n.id == var for n in ast.walk(stmt.value)
        ):
            return True
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.func.attr in ("close", "unlink", "release", "shutdown")
            ):
                return True
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                if isinstance(arg, ast.Name) and arg.id == var:
                    return True
        if isinstance(node, ast.Yield) and node.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id == var
                for n in ast.walk(node.value)
            ):
                return True
        if (
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Attribute) for t in node.targets)
            and isinstance(node.value, ast.Name)
            and node.value.id == var
        ):
            return True
    return False


def _protected(ctx: LintContext, stmt: ast.stmt, var: str) -> bool:
    """Whether an exception at ``stmt`` runs visible cleanup of ``var``
    on its way out (an enclosing finally/handler that clears it, or an
    enclosing ``with var``)."""
    for anc in ctx.ancestors(stmt):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == var
                ):
                    return True
        if isinstance(anc, ast.Try):
            bodies = [anc.finalbody, *(h.body for h in anc.handlers)]
            for body in bodies:
                for inner in body:
                    for sub in ast.walk(inner):
                        if isinstance(sub, ast.stmt) and _clears_var(sub, var):
                            return True
    return False


def _escape_violations(
    ctx: LintContext, fn: ast.FunctionDef | ast.AsyncFunctionDef, cfg: CFG
) -> Iterator[Violation]:
    for creation, var in _acquisitions(fn):
        clear_nodes = set()
        has_clear = False
        for node in cfg.nodes:
            if node.stmt is not None and _clears_var(node.stmt, var):
                clear_nodes.add(node.idx)
                has_clear = True
        if not has_clear:
            continue  # never cleaned up at all: ASV002's territory
        start = cfg.node_of(creation)
        if start is None:
            continue
        open_nodes = cfg.reachable(start, avoid=clear_nodes)
        for idx in sorted(open_nodes):
            node = cfg.nodes[idx]
            stmt = node.stmt
            if stmt is None or stmt is creation or not may_raise(stmt):
                continue
            if _protected(ctx, stmt, var):
                continue
            yield ctx.violation(
                stmt, "ASV007",
                f"an exception here escapes before {var!r} "
                f"(acquired at line {creation.lineno}) is cleaned up; the "
                "named shm segment would leak until interpreter exit",
                hint=f"acquire {var} with a `with` statement or wrap the "
                "uses in try/finally",
            )
            return  # one report per acquisition is enough


@register_rule
class ShmWriteRegionRule(Rule):
    """ASV007: statically catch the shm races and leaks the runtime
    sanitizer (``ASV_SHM_SANITIZE=1``) only catches when the bad path
    actually executes."""

    code = "ASV007"
    name = "shm-write-region"
    rationale = (
        "band jobs share one named output segment; overlapping writes, "
        "reads before the lazy job iterator drains, and exception paths "
        "that skip cleanup all corrupt or leak /dev/shm state without an "
        "immediate failure"
    )
    hint = (
        "partition rows with split_rows, drain job iterators before "
        "reading outputs, and release arenas in with/finally"
    )
    scope = ("repro/parallel/",)

    def check(self, ctx: LintContext) -> Iterable[Violation]:
        for fn in _functions(ctx.tree):
            cfg = build_cfg(fn)
            yield from _overlap_violations(ctx, fn, cfg)
            yield from _pending_violations(ctx, fn, cfg)
            yield from _escape_violations(ctx, fn, cfg)


# ----------------------------------------------------------------------
# ASV008: fields guarded in one method, unguarded in another
# ----------------------------------------------------------------------


def _lock_depth(ctx: LintContext, node: ast.AST, fn: ast.AST) -> int:
    depth = 0
    for anc in ctx.ancestors(node):
        if anc is fn:
            break
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                names = [
                    n.attr
                    for n in ast.walk(item.context_expr)
                    if isinstance(n, ast.Attribute)
                ] + [
                    n.id
                    for n in ast.walk(item.context_expr)
                    if isinstance(n, ast.Name)
                ]
                if any("lock" in name.lower() for name in names):
                    depth += 1
                    break
    return depth


def _self_fields(
    ctx: LintContext, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> Iterator[tuple[ast.Attribute, int]]:
    """(self.<field> access, lock depth) pairs within one method."""
    args = method.args
    positional = [*args.posonlyargs, *args.args]
    if not positional:
        return
    self_name = positional[0].arg
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            yield node, _lock_depth(ctx, node, method)


@register_rule
class LockDisciplineRule(Rule):
    """ASV008: a field the class guards with ``self._lock`` somewhere
    must be guarded everywhere it is reachable."""

    code = "ASV008"
    name = "lock-discipline"
    rationale = (
        "a field that one method protects with the instance lock is "
        "shared mutable state; touching it unguarded elsewhere races the "
        "guarded method (the ShmArena finalizer runs on whatever thread "
        "drops the last reference)"
    )
    hint = "wrap the access in `with self._lock:` (it is re-entrant)"
    scope = None

    def check(self, ctx: LintContext) -> Iterable[Violation]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = [
                node
                for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            method_names = {m.name for m in methods}
            #: field -> a method that guards it
            guarded: dict[str, str] = {}
            for method in methods:
                if method.name in _EXEMPT_METHODS:
                    continue
                for attr, depth in _self_fields(ctx, method):
                    field = attr.attr
                    if depth > 0 and "lock" not in field.lower() and (
                        field not in method_names
                    ):
                        guarded.setdefault(field, method.name)
            if not guarded:
                continue
            for method in methods:
                if method.name in _EXEMPT_METHODS:
                    continue
                cfg = build_cfg(method)
                live = cfg.reachable(cfg.entry)
                for attr, depth in _self_fields(ctx, method):
                    field = attr.attr
                    if depth > 0 or field not in guarded:
                        continue
                    idx = _stmt_node(ctx, cfg, attr)
                    if idx is not None and idx not in live:
                        continue  # dead code cannot race
                    yield ctx.violation(
                        attr, "ASV008",
                        f"field {field!r} is guarded by the instance lock in "
                        f"{cls.name}.{guarded[field]} but accessed unguarded "
                        "here",
                        hint=self.hint,
                    )
