"""ASV006 — static halo-sufficiency proofs for the tiled kernels.

The tiled executor is bit-identical to whole-frame execution *only*
when every band's overlap halo covers the wrapped kernel's vertical
footprint.  Until now that was a per-call-site numerology convention
checked by seam tests at a handful of parameter points; this rule
checks it statically, everywhere, in three parts:

1. **Declared vs derived** — every ``@stencil(...)``-decorated kernel
   has its body footprint derived (:mod:`tools.asvlint.summaries`) and
   compared against the declaration on a grid of parameter samples.
   A kernel that reads further than its stencil promises is flagged at
   the ``def``.
2. **Tiled call sites** — every ``*._tiled(kernel, arrays, kwargs,
   halo=...)`` call must pass a halo provably >= the declared stencil
   of the band kernel the name maps to (via the module's
   ``_BAND_KERNELS`` table).  The canonical form —
   ``halo=KERNEL_STENCIL.halo(p=expr)`` with ``p=expr`` also threaded
   to the kernel through ``kwargs`` — is verified structurally; a
   plain numeric halo is verified by sampled evaluation against the
   required footprint.  Kernels declaring ``Stencil.infinite()`` (the
   SGM aggregation) are untileable and any ``_tiled`` call on them is
   a violation.
3. **Direct ``split_rows`` calls** — a halo fed straight into
   ``split_rows`` must either be a passed-through parameter (the
   generic ``_tiled`` machinery itself, checked at *its* call sites)
   or a ``*.halo(...)`` computation whose stencil matches a kernel
   actually invoked in the enclosing function.

The derivation is a lower bound (unknown constructs contribute
nothing), so part 1 can miss but never false-positively prove; parts
2–3 are exact on the canonical form and refuse to certify what they
cannot evaluate.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Iterator

from tools.asvlint.engine import LintContext, Rule, Violation, register_rule
from tools.asvlint.summaries import (
    INFINITE,
    UNKNOWN,
    FootprintDeriver,
    ModuleSummary,
    ProjectIndex,
    StencilSpec,
    _Frame,
    _param_names,
    declared_stencil,
    iter_stencilled_functions,
    parse_stencil_expr,
    sample_envs,
)

__all__ = ["StencilHaloRule"]


def _enclosing_function(
    ctx: LintContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def _resolve_local(
    name: str, fn: ast.FunctionDef | ast.AsyncFunctionDef | None
) -> ast.expr | None:
    """The unique plain local assignment of ``name`` in ``fn``."""
    if fn is None:
        return None
    found: ast.expr | None = None
    count = 0
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            continue
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            found = node.value
            count += 1
    return found if count == 1 else None


def _kwargs_map(
    expr: ast.expr | None, fn: ast.FunctionDef | ast.AsyncFunctionDef | None
) -> dict[str, ast.expr] | None:
    """The ``param -> expr`` mapping of a ``_tiled`` kwargs argument.

    Accepts a ``dict(...)`` call, a ``{...}`` literal, or a name
    resolving to one; ``None`` when the mapping cannot be determined.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        expr = _resolve_local(expr.id, fn)
        if expr is None:
            return None
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "dict"
        and not expr.args
    ):
        out = {}
        for kw in expr.keywords:
            if kw.arg is None:
                return None  # a ** splat hides bindings
            out[kw.arg] = kw.value
        return out
    if isinstance(expr, ast.Dict):
        out = {}
        for key, value in zip(expr.keys, expr.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            out[key.value] = value
        return out
    return None


def _halo_call(expr: ast.expr) -> tuple[ast.expr, dict[str, ast.expr]] | None:
    """Split a ``<stencil>.halo(p=...)`` call into (stencil expr, kwargs)."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "halo"
        and not expr.args
        and all(kw.arg is not None for kw in expr.keywords)
    ):
        return expr.func.value, {kw.arg: kw.value for kw in expr.keywords}
    return None


def _band_kernel_table(
    module: ModuleSummary, index: ProjectIndex
) -> dict[str, StencilSpec | None] | None:
    """Kernel name -> declared stencil, from ``_BAND_KERNELS``.

    ``None`` when the module has no resolvable table; a ``None`` value
    for one kernel means the entry did not resolve to a decorated
    function.
    """
    table_expr = module.assigns.get("_BAND_KERNELS")
    if not isinstance(table_expr, ast.Dict):
        return None
    table: dict[str, StencilSpec | None] = {}
    for key, value in zip(table_expr.keys, table_expr.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        spec: StencilSpec | None = None
        if isinstance(value, ast.Name):
            resolved = index.resolve(module, value.id)
            if resolved is not None and resolved[0] == "func":
                _, fn, home = resolved
                spec = declared_stencil(fn, home, index)
        table[key.value] = spec
    return table


class _SiteChecker:
    """Checks one file's `_tiled` / `split_rows` halo call sites."""

    def __init__(self, ctx: LintContext, module: ModuleSummary, index: ProjectIndex):
        self.ctx = ctx
        self.module = module
        self.index = index
        self.deriver = FootprintDeriver(index)

    # -- part 2: _tiled call sites -------------------------------------

    def check_tiled(self, call: ast.Call) -> Iterator[Violation]:
        ctx = self.ctx
        kernel_arg = call.args[0] if call.args else None
        if not (
            isinstance(kernel_arg, ast.Constant) and isinstance(kernel_arg.value, str)
        ):
            yield ctx.violation(
                call, "ASV006",
                "_tiled kernel name is not a string literal, so the halo "
                "cannot be checked against the kernel's stencil",
                hint="pass the band-kernel name as a literal",
            )
            return
        kernel = kernel_arg.value
        table = _band_kernel_table(self.module, self.index)
        if table is None or kernel not in table:
            yield ctx.violation(
                call, "ASV006",
                f"band kernel {kernel!r} is not in this module's "
                "_BAND_KERNELS table",
                hint="register the kernel in _BAND_KERNELS",
            )
            return
        required = table[kernel]
        if required is None:
            yield ctx.violation(
                call, "ASV006",
                f"band kernel {kernel!r} resolves to a function without an "
                "@stencil declaration, so its halo requirement is unknown",
                hint="declare the kernel's vertical footprint with @stencil(...)",
            )
            return
        if not required.tileable:
            yield ctx.violation(
                call, "ASV006",
                f"band kernel {kernel!r} declares {required.describe()}: its "
                "footprint is the whole image and no finite halo can tile it",
                hint="parallelise along another axis (SGM fans out over "
                "path directions)",
            )
            return
        fn = _enclosing_function(ctx, call)
        halo_expr = self._argument(call, "halo", 3)
        if halo_expr is None:
            yield ctx.violation(
                call, "ASV006", "_tiled call passes no halo",
                hint="pass halo=<KERNEL_STENCIL>.halo(...)",
            )
            return
        if isinstance(halo_expr, ast.Name):
            resolved = _resolve_local(halo_expr.id, fn)
            if resolved is not None:
                halo_expr = resolved
        kwargs_expr = self._argument(call, "kwargs", 2)
        kw_map = _kwargs_map(kwargs_expr, fn)
        split = _halo_call(halo_expr)
        if split is not None:
            yield from self._check_stencil_site(
                call, kernel, required, split, kw_map
            )
            return
        yield from self._check_numeric_site(
            call, kernel, required, halo_expr, kw_map, fn
        )

    def _argument(
        self, call: ast.Call, name: str, position: int
    ) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        if len(call.args) > position:
            arg = call.args[position]
            if not isinstance(arg, ast.Starred):
                return arg
        return None

    def _check_stencil_site(
        self,
        call: ast.Call,
        kernel: str,
        required: StencilSpec,
        split: tuple[ast.expr, dict[str, ast.expr]],
        kw_map: dict[str, ast.expr] | None,
    ) -> Iterator[Violation]:
        ctx = self.ctx
        stencil_expr, halo_kwargs = split
        site_spec = parse_stencil_expr(stencil_expr, self.module, self.index)
        if site_spec is None:
            yield ctx.violation(
                call, "ASV006",
                f"halo for kernel {kernel!r} is computed from an expression "
                "that does not resolve to a Stencil declaration",
                hint="use the stencil constant declared next to the kernel",
            )
            return
        if site_spec != required:
            yield ctx.violation(
                call, "ASV006",
                f"halo for kernel {kernel!r} is computed from "
                f"{site_spec.describe()} but the kernel declares "
                f"{required.describe()}",
                hint="compute the halo from the kernel's own stencil constant",
            )
            return
        # the stencil parameters must be fed the same expressions the
        # kernel itself will receive through kwargs
        resolved = self._resolve_kernel(kernel)
        for param in required.params():
            site_arg = halo_kwargs.get(param)
            if site_arg is None:
                yield ctx.violation(
                    call, "ASV006",
                    f"halo for kernel {kernel!r} does not bind the stencil "
                    f"parameter {param!r}",
                    hint=f"pass {param}=... to .halo()",
                )
                return
            kernel_arg = kw_map.get(param) if kw_map is not None else None
            if kernel_arg is None:
                kernel_arg = self._kernel_default(resolved, param)
            if kernel_arg is None:
                yield ctx.violation(
                    call, "ASV006",
                    f"cannot determine the {param!r} value kernel {kernel!r} "
                    "will receive (kwargs are not statically resolvable)",
                    hint="build kwargs with a literal dict(...) at the call site",
                )
                return
            if ast.dump(site_arg) != ast.dump(kernel_arg):
                yield ctx.violation(
                    call, "ASV006",
                    f"halo for kernel {kernel!r} is computed from "
                    f"{param}={ast.unparse(site_arg)} but the kernel receives "
                    f"{param}={ast.unparse(kernel_arg)}",
                    hint="thread the same expression into .halo() and kwargs",
                )
                return

    def _resolve_kernel(self, kernel: str):
        table_expr = self.module.assigns.get("_BAND_KERNELS")
        if not isinstance(table_expr, ast.Dict):
            return None
        for key, value in zip(table_expr.keys, table_expr.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == kernel
                and isinstance(value, ast.Name)
            ):
                resolved = self.index.resolve(self.module, value.id)
                if resolved is not None and resolved[0] == "func":
                    return resolved
        return None

    def _kernel_default(self, resolved, param: str) -> ast.expr | None:
        """The kernel's own default expression for ``param``."""
        if resolved is None:
            return None
        _, fn, _home = resolved
        a = fn.args
        positional = [*a.posonlyargs, *a.args]
        for p, default in zip(
            positional[len(positional) - len(a.defaults):], a.defaults
        ):
            if p.arg == param:
                return default
        for p, default in zip(a.kwonlyargs, a.kw_defaults):
            if p.arg == param and default is not None:
                return default
        return None

    def _check_numeric_site(
        self,
        call: ast.Call,
        kernel: str,
        required: StencilSpec,
        halo_expr: ast.expr,
        kw_map: dict[str, ast.expr] | None,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
    ) -> Iterator[Violation]:
        """Sampled comparison of a non-stencil halo expression."""
        ctx = self.ctx
        if kw_map is None:
            yield ctx.violation(
                call, "ASV006",
                f"cannot statically resolve the kwargs kernel {kernel!r} "
                "receives, so the halo cannot be verified",
                hint="build kwargs with a literal dict(...) at the call site",
            )
            return
        resolved = self._resolve_kernel(kernel)
        for env in sample_envs(required):
            effective = dict(env)
            bindings: dict[str, Any] = {}
            unverifiable = False
            for param in required.params():
                kernel_arg = kw_map.get(param)
                if kernel_arg is None:
                    kernel_arg = self._kernel_default(resolved, param)
                if kernel_arg is None:
                    unverifiable = True
                    break
                if isinstance(kernel_arg, ast.Constant):
                    # a pinned parameter replaces the sample
                    effective[param] = kernel_arg.value
                elif isinstance(kernel_arg, ast.Name):
                    bindings[kernel_arg.id] = env.get(param)
                else:
                    unverifiable = True
                    break
            if unverifiable:
                yield ctx.violation(
                    call, "ASV006",
                    f"cannot statically relate the halo of kernel {kernel!r} "
                    f"to its {required.describe()} parameters",
                    hint="compute the halo from the kernel's stencil constant",
                )
                return
            required_halo = required.halo_value(effective)
            if required_halo is UNKNOWN:
                continue
            frame = _Frame(self.module, fn, bindings)
            provided = self.deriver.eval(halo_expr, frame)
            if not isinstance(provided, (int, float)) or isinstance(provided, bool):
                yield ctx.violation(
                    call, "ASV006",
                    f"halo expression {ast.unparse(halo_expr)!r} for kernel "
                    f"{kernel!r} cannot be statically evaluated",
                    hint="compute the halo from the kernel's stencil constant",
                )
                return
            if provided < required_halo:
                sample = ", ".join(f"{k}={v}" for k, v in effective.items())
                yield ctx.violation(
                    call, "ASV006",
                    f"halo {ast.unparse(halo_expr)} = {provided:g} is smaller "
                    f"than kernel {kernel!r}'s {required_halo:g}-row footprint "
                    f"(at {sample}): bands would read stale rows",
                    hint="compute the halo from the kernel's stencil constant",
                )
                return

    # -- part 3: direct split_rows calls -------------------------------

    def check_split_rows(self, call: ast.Call) -> Iterator[Violation]:
        ctx = self.ctx
        halo_expr = self._argument(call, "halo", 2)
        if halo_expr is None:
            return
        fn = _enclosing_function(ctx, call)
        if (
            isinstance(halo_expr, ast.Name)
            and fn is not None
            and halo_expr.id in _param_names(fn)
            and _resolve_local(halo_expr.id, fn) is None
        ):
            return  # generic machinery: verified at its own call sites
        if isinstance(halo_expr, ast.Name):
            resolved = _resolve_local(halo_expr.id, fn)
            if resolved is not None:
                halo_expr = resolved
        split = _halo_call(halo_expr)
        if split is None:
            if isinstance(halo_expr, ast.Constant) and halo_expr.value == 0:
                return  # an explicit zero halo means independent rows
            yield ctx.violation(
                call, "ASV006",
                "split_rows halo is not derived from a kernel stencil "
                "(and is not a pass-through parameter)",
                hint="compute the halo with <KERNEL_STENCIL>.halo(...)",
            )
            return
        site_spec = parse_stencil_expr(split[0], self.module, self.index)
        if site_spec is None:
            yield ctx.violation(
                call, "ASV006",
                "split_rows halo stencil does not resolve to a Stencil "
                "declaration",
                hint="use the stencil constant declared next to the kernel",
            )
            return
        # the stencil must belong to a kernel this function actually runs
        if fn is not None:
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call) or node is call:
                    continue
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name is None:
                    continue
                resolved = self.index.resolve(self.module, name)
                if resolved is None or resolved[0] != "func":
                    continue
                spec = declared_stencil(resolved[1], resolved[2], self.index)
                if spec == site_spec:
                    return
        yield ctx.violation(
            call, "ASV006",
            f"split_rows halo is computed from {site_spec.describe()} but no "
            "kernel declaring that stencil is invoked in this function",
            hint="band with the stencil of the kernel the bands will run",
        )


@register_rule
class StencilHaloRule(Rule):
    """ASV006: every tiled call site's halo must cover — provably, at
    lint time — the declared (and derived) footprint of the kernel it
    wraps."""

    code = "ASV006"
    name = "halo-sufficiency"
    rationale = (
        "the tiled==serial bit-identity of PR 5/6/8 holds only when each "
        "band's halo covers the kernel's vertical footprint; a shrunk halo "
        "corrupts rows silently, far from the edit that broke it"
    )
    hint = (
        "declare footprints once with @stencil(...) next to the kernel and "
        "compute every halo via <STENCIL>.halo(...)"
    )
    scope = ("repro/parallel/", "repro/stereo/", "repro/flow/")

    def check(self, ctx: LintContext) -> Iterable[Violation]:
        index = ProjectIndex.for_root(ctx.repo_root)
        module = ModuleSummary(ctx.tree, name=ctx.rel.removesuffix(".py").replace("/", "."))
        deriver = FootprintDeriver(index)
        # part 1: declared vs derived, per decorated kernel
        for fn, spec in iter_stencilled_functions(module, index):
            params = [*_param_names(fn), *(p.arg for p in fn.args.kwonlyargs)]
            for param in spec.params():
                if param not in params and fn.args.kwarg is None:
                    yield ctx.violation(
                        fn, "ASV006",
                        f"stencil parameter {param!r} is not a parameter of "
                        f"kernel {fn.name!r}",
                        hint="name the kernel keyword the footprint scales with",
                    )
                    break
            else:
                if spec.tileable:
                    for env in sample_envs(spec):
                        declared = spec.halo_value(env)
                        if declared is UNKNOWN:
                            continue
                        derived = deriver.reach(fn, module, env)
                        if derived > declared:
                            sample = ", ".join(f"{k}={v}" for k, v in env.items())
                            reach = "unbounded" if derived == INFINITE else f"{derived:g} rows"
                            yield ctx.violation(
                                fn, "ASV006",
                                f"kernel {fn.name!r} declares a {declared:g}-row "
                                f"halo (at {sample}) but its body reaches "
                                f"{reach}",
                                hint="widen the stencil declaration or shrink "
                                "the kernel's vertical reach",
                            )
                            break
        # parts 2 and 3: call sites
        checker = _SiteChecker(ctx, module, index)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "_tiled":
                yield from checker.check_tiled(node)
            elif (
                isinstance(node.func, ast.Name) and node.func.id == "split_rows"
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "split_rows"
            ):
                yield from checker.check_split_rows(node)
