"""The built-in asvlint rules (ASV001–ASV005).

Each rule encodes an invariant a previous PR earned the hard way; the
``rationale`` attribute names it.  See ``docs/static-analysis.md`` for
the full catalog, suppression syntax, and how to register new rules.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Iterator

from tools.asvlint.engine import LintContext, Rule, Violation, register_rule

__all__ = [
    "DeterminismRule",
    "ShmLifecycleRule",
    "PrecisionRule",
    "RegistryDocDriftRule",
    "BoundedSubmissionRule",
]

#: packages whose serving/transport loops must be *strictly* deterministic
#: (the PR 7 byte-identical-replay contract)
STRICT_DETERMINISM = ("repro/cluster/", "repro/pipeline/", "repro/parallel/")

#: packages whose kernels carry the ``precision`` dtype knob (PR 5/6/8)
PRECISION_SCOPE = ("repro/stereo/", "repro/flow/", "repro/parallel/")

#: ``np.random`` global-state functions banned everywhere (their seed is
#: hidden process state, so runs stop replaying)
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "uniform", "normal", "standard_normal",
        "get_state", "set_state",
    }
)


def _dotted(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Imports:
    """Name bindings relevant to the determinism rule."""

    def __init__(self, tree: ast.AST):
        self.random_modules: set[str] = set()    # names bound to stdlib random
        self.random_funcs: set[str] = set()      # names imported *from* random
        self.time_modules: set[str] = set()      # names bound to stdlib time
        self.time_funcs: set[str] = set()        # names bound to time.time/time_ns
        self.numpy_modules: set[str] = set()     # names bound to numpy
        self.nprandom_modules: set[str] = set()  # names bound to numpy.random
        self.nprandom_funcs: dict[str, str] = {} # local name -> numpy.random attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(bound)
                    elif alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(bound)
                    elif alias.name == "numpy.random" and alias.asname:
                        self.nprandom_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "random":
                        self.random_funcs.add(bound)
                    elif node.module == "time" and alias.name in ("time", "time_ns"):
                        self.time_funcs.add(bound)
                    elif node.module == "numpy" and alias.name == "random":
                        self.nprandom_modules.add(bound)
                    elif node.module == "numpy.random":
                        self.nprandom_funcs[bound] = alias.name


@register_rule
class DeterminismRule(Rule):
    """ASV001: no hidden-state randomness or wall-clock in serving code.

    Globally (all of ``src``): stdlib ``random``, ``time.time()`` /
    ``time.time_ns()`` (use ``time.perf_counter()`` for durations, an
    explicit parameter for timestamps), ``np.random``'s global-state
    API, and *unseeded* ``np.random.default_rng()`` are banned.

    Additionally, inside the strictly deterministic packages
    (``cluster/``, ``pipeline/``, ``parallel/``): ``hash()`` on
    anything but an int literal (``PYTHONHASHSEED`` perturbs it — PR 7
    replaced it with SHA-256 draws) and *any* ``np.random`` call other
    than an explicitly seeded ``default_rng(seed)`` or a
    ``Generator(...)`` construction.
    """

    code = "ASV001"
    name = "determinism"
    rationale = (
        "PR 7's chaos replays are byte-identical because every draw is a pure "
        "function of an explicit seed; PR 5/6/8 pin tiled==serial bitwise."
    )
    hint = (
        "thread an explicit seed: np.random.default_rng(seed) / SHA-256 of the "
        "(seed, key) tuple; time.perf_counter() for durations"
    )
    scope = None

    def _strict(self, rel: str) -> bool:
        return any(rel.startswith(p) for p in STRICT_DETERMINISM)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        imports = _Imports(ctx.tree)
        strict = self._strict(ctx.rel)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted(node.func)
            if parts is None:
                continue
            yield from self._check_call(ctx, node, parts, imports, strict)

    def _check_call(
        self,
        ctx: LintContext,
        node: ast.Call,
        parts: list[str],
        imports: _Imports,
        strict: bool,
    ) -> Iterator[Violation]:
        root, rest = parts[0], parts[1:]
        if root in imports.random_modules or (not rest and root in imports.random_funcs):
            yield ctx.violation(
                node, self.code,
                f"stdlib random ({'.'.join(parts)}) draws from hidden process "
                "state; runs stop replaying",
                self.hint,
            )
            return
        is_time_call = (
            root in imports.time_modules and rest in (["time"], ["time_ns"])
        ) or (not rest and root in imports.time_funcs)
        if is_time_call:
            yield ctx.violation(
                node, self.code,
                f"{'.'.join(parts)}() reads the wall clock; simulated time and "
                "report replays must not depend on it",
                self.hint,
            )
            return
        if strict and not rest and root == "hash" and not (
            node.args and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, int)
        ):
            yield ctx.violation(
                node, self.code,
                "hash() on non-int is perturbed by PYTHONHASHSEED; derive draws "
                "from SHA-256 of the (seed, key) tuple instead",
                self.hint,
            )
            return
        # resolve np.random.<fn> in its three spellings
        fn: str | None = None
        if root in imports.numpy_modules and len(rest) == 2 and rest[0] == "random":
            fn = rest[1]
        elif root in imports.nprandom_modules and len(rest) == 1:
            fn = rest[0]
        elif not rest and root in imports.nprandom_funcs:
            fn = imports.nprandom_funcs[root]
        if fn is None:
            return
        if fn == "default_rng":
            if not node.args and not node.keywords:
                yield ctx.violation(
                    node, self.code,
                    "np.random.default_rng() without a seed draws from OS "
                    "entropy; pass the explicit seed the caller threads",
                    self.hint,
                )
        elif fn in _LEGACY_NP_RANDOM:
            yield ctx.violation(
                node, self.code,
                f"np.random.{fn} mutates/reads hidden global RNG state; use an "
                "explicitly seeded Generator",
                self.hint,
            )
        elif strict and fn != "Generator":
            yield ctx.violation(
                node, self.code,
                f"np.random.{fn} in a strictly deterministic package; only "
                "seeded default_rng(seed) / Generator(...) are allowed here",
                self.hint,
            )


def _enclosing_scope(ctx: LintContext, node: ast.AST) -> ast.AST:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return ctx.tree


def _cleanup_evidence(scope: ast.AST, name: str) -> bool:
    """Whether ``name`` is closed, delegated, stored, or handed off."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Attribute) and node.attr in ("close", "unlink"):
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True
        if isinstance(node, ast.Call):
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True  # delegated (finalize/_close_quietly/container)
        if isinstance(node, (ast.Return, ast.Yield)) and isinstance(
            node.value, ast.Name
        ) and node.value.id == name:
            return True  # ownership transferred to the caller
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name) and (
            node.value.id == name
        ):
            if not all(isinstance(t, ast.Name) for t in node.targets):
                return True  # stored into a container/attribute
        if isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True  # later `with name:` owns the cleanup
    return False


def _attr_cleanup_evidence(tree: ast.AST, attr: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in ("close", "unlink"):
            if isinstance(node.value, ast.Attribute) and node.value.attr == attr:
                return True
        if isinstance(node, ast.Call):
            parts = _dotted(node.func)
            if parts and parts[-1] == "finalize":
                return True
    return False


@register_rule
class ShmLifecycleRule(Rule):
    """ASV002: every shared-memory segment has an owner that unlinks it.

    Direct ``SharedMemory`` construction is confined to
    ``repro/parallel/shm.py`` — everything else goes through
    ``ShmArena`` (create) / ``attached`` (map).  An ``ShmArena()`` or
    ``SharedMemory()`` creation must be used as a context manager,
    ``close()``/``unlink()``-ed, registered with ``weakref.finalize``,
    or handed off (returned / passed on / stored in an owning
    container) inside its scope; a creation the linter cannot see an
    owner for is a leaked ``/dev/shm`` name waiting to happen.
    """

    code = "ASV002"
    name = "shm-lifecycle"
    rationale = (
        "PR 6's crash-safe ShmArena: leaked segments survive the process and "
        "fail CI's /dev/shm/asv_* leak check"
    )
    hint = (
        "wrap the creation in `with ShmArena() as arena:` or pair it with "
        "close()/unlink()/weakref.finalize"
    )
    scope = None

    _SHM_HOME = "repro/parallel/shm.py"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted(node.func)
            if parts is None:
                continue
            ctor = parts[-1]
            if ctor == "SharedMemory" and ctx.rel != self._SHM_HOME:
                yield ctx.violation(
                    node, self.code,
                    "direct SharedMemory construction outside parallel/shm.py; "
                    "create through ShmArena, map through attached()",
                    self.hint,
                )
                continue
            if ctor not in ("ShmArena", "SharedMemory"):
                continue
            yield from self._check_creation(ctx, node, ctor)

    def _check_creation(
        self, ctx: LintContext, node: ast.Call, ctor: str
    ) -> Iterator[Violation]:
        assign: ast.Assign | None = None
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.withitem):
                return  # context manager owns the lifecycle
            if isinstance(anc, ast.Call):
                return  # passed straight into an owner (enter_context/...)
            if isinstance(anc, (ast.Return, ast.Yield)):
                return  # ownership transferred to the caller
            if isinstance(anc, ast.Assign):
                assign = anc
                break
            if isinstance(anc, ast.Expr):
                yield ctx.violation(
                    node, self.code,
                    f"{ctor}() created and immediately dropped; nothing can "
                    "ever unlink this segment",
                    self.hint,
                )
                return
            if isinstance(anc, ast.stmt):
                break
        if assign is None:
            return
        target = assign.targets[0] if len(assign.targets) == 1 else None
        if isinstance(target, ast.Name):
            scope = _enclosing_scope(ctx, node)
            if not _cleanup_evidence(scope, target.id):
                yield ctx.violation(
                    node, self.code,
                    f"{ctor}() bound to {target.id!r} is never closed, "
                    "unlinked, finalized, or handed off in this scope",
                    self.hint,
                )
        elif isinstance(target, ast.Attribute):
            if not _attr_cleanup_evidence(ctx.tree, target.attr):
                yield ctx.violation(
                    node, self.code,
                    f"{ctor}() stored on self.{target.attr} with no close()/"
                    "unlink()/weakref.finalize anywhere in the module",
                    self.hint,
                )


#: allocators whose dtype defaults to float64 silently; (name, index of the
#: positional dtype argument)
_FLOAT_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}


@register_rule
class PrecisionRule(Rule):
    """ASV003: kernel paths thread the ``precision`` knob, never guess.

    In ``stereo/``, ``flow/`` and ``parallel/``: ``np.zeros`` /
    ``np.empty`` / ``np.ones`` / ``np.full`` must name a dtype (a
    dtype-less allocation silently pins float64 and breaks the
    float32 path's memory model), ``np.float32(...)`` /
    ``np.float64(...)`` casts are banned in favour of the resolved
    knob, and a public function that *accepts* ``precision`` must
    actually use it.
    """

    code = "ASV003"
    name = "precision-threading"
    rationale = (
        "PR 5 threaded precision='float32'|'float64' through every kernel; a "
        "dtype-less hot-path allocation reverts it without failing any test"
    )
    hint = (
        "pass dtype=resolve_precision(precision) (or an explicit np.float64 if "
        "the value is precision-independent by design)"
    )
    scope = PRECISION_SCOPE

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        imports = _Imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_alloc(ctx, node, imports)
            elif isinstance(node, ast.FunctionDef):
                yield from self._check_knob(ctx, node)

    def _check_alloc(
        self, ctx: LintContext, node: ast.Call, imports: _Imports
    ) -> Iterator[Violation]:
        parts = _dotted(node.func)
        if parts is None or len(parts) != 2 or parts[0] not in imports.numpy_modules:
            return
        fn = parts[1]
        if fn in ("float32", "float64"):
            yield ctx.violation(
                node, self.code,
                f"bare np.{fn}(...) cast hard-codes the dtype on a kernel path",
                self.hint,
            )
            return
        dtype_pos = _FLOAT_ALLOCATORS.get(fn)
        if dtype_pos is None:
            return
        has_dtype = len(node.args) > dtype_pos or any(
            kw.arg == "dtype" for kw in node.keywords
        )
        if not has_dtype:
            yield ctx.violation(
                node, self.code,
                f"np.{fn} without an explicit dtype defaults to float64 and "
                "ignores the precision knob",
                self.hint,
            )

    def _check_knob(
        self, ctx: LintContext, node: ast.FunctionDef
    ) -> Iterator[Violation]:
        if node.name.startswith("_"):
            return
        params = [
            a.arg
            for a in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
        ]
        if "precision" not in params:
            return
        used = any(
            isinstance(n, ast.Name) and n.id == "precision"
            for body_stmt in node.body
            for n in ast.walk(body_stmt)
        )
        if not used:
            yield ctx.violation(
                node, self.code,
                f"{node.name}() accepts a precision knob it never forwards",
                "forward precision= to the allocations/kernels this calls",
            )


_REGISTRARS = ("register_backend", "register_scheduler", "register_placement_policy")

_DOCS_CACHE: dict[pathlib.Path, str] = {}


def _docs_text(repo_root: pathlib.Path) -> str | None:
    docs = repo_root / "docs"
    if not docs.is_dir():
        return None
    if repo_root not in _DOCS_CACHE:
        _DOCS_CACHE[repo_root] = "\n".join(
            p.read_text() for p in sorted(docs.glob("*.md"))
        )
    return _DOCS_CACHE[repo_root]


@register_rule
class RegistryDocDriftRule(Rule):
    """ASV004: every registered name is documented.

    Names registered through ``register_backend`` /
    ``register_scheduler`` / ``register_placement_policy`` are the
    system's public vocabulary — users select them by string.  Each
    must appear somewhere in ``docs/*.md``, or the docs have silently
    drifted behind the registries.
    """

    code = "ASV004"
    name = "registry-doc-drift"
    rationale = (
        "PR 2/3's docs suite documents the registries; a registered-but-"
        "undocumented name is invisible to users and to the docs link-check"
    )
    hint = "mention the registered name in the relevant docs/ page"
    scope = None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.repo_root is None:
            return
        docs = _docs_text(ctx.repo_root)
        if docs is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted(node.func)
            if parts is None or parts[-1] not in _REGISTRARS or not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            if arg.value not in docs:
                yield ctx.violation(
                    node, self.code,
                    f"{parts[-1]}({arg.value!r}) registers a name that appears "
                    "nowhere in docs/",
                    self.hint,
                )


def _islice_bounded(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Call):
        parts = _dotted(expr.func)
        return bool(parts) and parts[-1] == "islice"
    return False


@register_rule
class BoundedSubmissionRule(Rule):
    """ASV005: pool submission loops keep a bounded in-flight set.

    ``.submit()`` inside a ``for`` loop or comprehension fans out one
    future per item *eagerly* — for the SGM direction fan-out that was
    8 simultaneously pickled cost volumes.  Submission loops must be
    bounded the way ``TileExecutor._iter_map`` is: prime at most
    ``workers`` futures through ``islice``, then submit one job per
    consumed result.  (A ``while`` that submits after consuming is the
    second half of that pattern and is allowed.)
    """

    code = "ASV005"
    name = "bounded-submission"
    rationale = (
        "PR 6 bounded _iter_map to the worker count; unbounded fan-out holds "
        "every job's payload alive at once"
    )
    hint = "route the loop through _iter_map, or prime with islice(jobs, workers)"
    scope = None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
            ):
                continue
            for anc in ctx.ancestors(node):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(anc, (ast.For, ast.AsyncFor)) and not _islice_bounded(
                    anc.iter
                ):
                    yield ctx.violation(
                        node, self.code,
                        "submit() fans out one future per loop iteration with "
                        "no in-flight bound",
                        self.hint,
                    )
                    break
                if isinstance(
                    anc, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ) and not all(_islice_bounded(g.iter) for g in anc.generators):
                    yield ctx.violation(
                        node, self.code,
                        "submit() inside a comprehension materialises every "
                        "future eagerly",
                        self.hint,
                    )
                    break
