"""CLI: ``python -m tools.asvlint [paths...]``.

Exit status: 0 clean, 1 violations (or a canary diff), 2 usage errors.
Default output is one ``path:line:col: CODE message [fix: ...]`` line
per violation; ``--format=sarif`` emits a SARIF 2.1.0 run on stdout
(for code-scanning upload) instead, and ``--stats`` prints per-rule
wall time to stderr.  Under GitHub Actions (or with ``--github``) each
violation is additionally emitted as a ``::error file=...,line=...``
annotation so CI failures land on the offending line in the diff view.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from tools.asvlint.engine import (
    Violation,
    available_rules,
    get_rule,
    lint_paths,
)


def _list_rules() -> None:
    for code in available_rules():
        rule = get_rule(code)
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        print(f"{code}  {rule.name}  [{scope}]")
        print(f"    rationale: {rule.rationale}")
        print(f"    fix: {rule.hint}")


def sarif_report(violations: list[Violation]) -> dict:
    """The SARIF 2.1.0 document for one lint run."""
    rules = []
    for code in available_rules():
        rule = get_rule(code)
        rules.append(
            {
                "id": code,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.rationale},
                "help": {"text": rule.hint},
            }
        )
    results = []
    for v in violations:
        results.append(
            {
                "ruleId": v.code,
                "level": "error",
                "message": {"text": v.message + (f" [fix: {v.hint}]" if v.hint else "")},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": v.path},
                            "region": {
                                "startLine": v.line,
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "asvlint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.asvlint",
        description="repo-specific static analysis (determinism, shm "
        "lifecycle, precision threading, registry drift, bounded "
        "submission, halo sufficiency, shm write regions, lock "
        "discipline)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--format", choices=("text", "sarif"), default="text",
                        help="violation output format (default: text)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-rule wall time to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub Actions ::error annotations "
                        "(automatic when GITHUB_ACTIONS is set)")
    parser.add_argument("--canary", action="store_true",
                        help="run the dynamic determinism canary instead of "
                        "the static pass (needs repro importable)")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0
    if args.canary:
        from tools.asvlint.canary import run_canary

        return run_canary()

    select = None
    if args.select:
        select = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        for code in select:
            get_rule(code)  # fail fast on unknown codes
    timings: dict[str, float] = {}
    violations = lint_paths(
        args.paths or ["src"], select=select, timings=timings
    )
    if args.format == "sarif":
        json.dump(sarif_report(violations), sys.stdout, indent=2)
        print()
    else:
        github = args.github or os.environ.get("GITHUB_ACTIONS") == "true"
        for v in violations:
            print(v.render())
            if github:
                print(v.render_github())
    if args.stats:
        total = sum(timings.values())
        for code, seconds in sorted(
            timings.items(), key=lambda kv: kv[1], reverse=True
        ):
            print(f"asvlint: {code} {seconds * 1000:8.1f} ms", file=sys.stderr)
        print(f"asvlint: rules total {total:.2f} s", file=sys.stderr)
    if violations:
        print(
            f"asvlint: {len(violations)} violation(s) in "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    print("asvlint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `--list-rules | head`
        sys.exit(0)
