"""Worklist fixpoint solver over :class:`tools.asvlint.cfg.CFG`.

A :class:`Domain` packages one abstract interpretation: the state at
function entry (``initial``), how states merge at join points
(``join``), and how one statement transforms a state (``transfer``,
plus the optional edge-sensitive ``transfer_edge`` for domains that
learn from branch labels — e.g. a ``for`` loop's ``false`` edge proves
the iterator is exhausted).

:func:`solve` iterates to a fixpoint with a per-node visit budget: a
node revisited more than ``max_visits`` times has its outgoing states
widened to ``Domain.top()``, so termination is guaranteed even for
domains whose lattices have unbounded ascending chains (``top`` must be
absorbing under ``join``).  States are compared with ``==``; a domain's
states should therefore be immutable values (tuples, frozensets,
numbers).

Third-party rules can build on this directly::

    from tools.asvlint import build_cfg, solve, Domain

    class Armed(Domain):
        def initial(self):
            return False
        def join(self, a, b):
            return a or b
        def top(self):
            return True
        def transfer(self, node, state):
            ...  # inspect node.stmt, return the new state
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict

from tools.asvlint.cfg import CFG, Node

__all__ = ["BOTTOM", "Domain", "solve"]


class _Bottom:
    """Sentinel for "node not yet reached" (distinct from any state)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BOTTOM"


BOTTOM = _Bottom()


class Domain:
    """Base class for abstract domains (override the four hooks)."""

    def initial(self) -> Any:
        """State at function entry."""
        raise NotImplementedError

    def top(self) -> Any:
        """The absorbing "anything may have happened" state, used for
        widening when a loop refuses to converge."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Merge two states flowing into the same node."""
        raise NotImplementedError

    def transfer(self, node: Node, state: Any) -> Any:
        """State after executing ``node`` given ``state`` before it."""
        return state

    def transfer_edge(self, node: Node, label: str, state: Any) -> Any:
        """Refine the post-state of ``node`` along one labelled edge."""
        return state


def solve(cfg: CFG, domain: Domain, max_visits: int = 64) -> Dict[int, Any]:
    """Run ``domain`` to fixpoint over ``cfg``.

    Returns the map ``node index -> state on entry to that node``;
    unreached nodes map to :data:`BOTTOM`.  ``max_visits`` bounds the
    number of times any single node is re-processed before widening.
    """
    states: Dict[int, Any] = {node.idx: BOTTOM for node in cfg.nodes}
    states[cfg.entry] = domain.initial()
    visits: Dict[int, int] = {}
    work = deque([cfg.entry])
    while work:
        idx = work.popleft()
        state = states[idx]
        if state is BOTTOM:
            continue
        visits[idx] = visits.get(idx, 0) + 1
        widen = visits[idx] > max_visits
        node = cfg.nodes[idx]
        out = domain.transfer(node, state)
        for succ, label in cfg.succ[idx]:
            edge_state = domain.top() if widen else domain.transfer_edge(
                node, label, out
            )
            current = states[succ]
            merged = (
                edge_state
                if current is BOTTOM
                else domain.join(current, edge_state)
            )
            if current is BOTTOM or merged != current:
                states[succ] = merged
                if succ not in work:
                    work.append(succ)
    return states
