from setuptools import find_packages, setup

setup(
    name="asv-repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # the DSE-tuned TileExecutor band-size table rides along with the
    # code (regenerate: python -m repro.parallel.autotune)
    package_data={"repro.parallel": ["tuned_configs.json"]},
    install_requires=["numpy", "scipy"],
    python_requires=">=3.10",
)
