"""Tour of the deconvolution optimizations (paper Sec. 4).

Walks through the second half of the paper on a real layer:

1. numerically verify the deconvolution-to-convolution transformation
   (Fig. 6) — bit-exact, 4x fewer MACs in 2-D, ~8x in 3-D;
2. schedule a stereo deconvolution under the four execution strategies
   and compare cycles / DRAM traffic / energy;
3. apply the same software pipeline to a GAN generator (the Fig. 14
   experiment in miniature).

Run:  python examples/deconv_optimizer_tour.py
"""

import numpy as np

from repro.deconv import (
    deconv_via_subconvolutions,
    lower_spec,
    optimize_layer,
    schedule_with_partition,
    transformed_specs,
)
from repro.deconv.exhaustive import Partition
from repro.hw import ASV_BASE, SystolicModel
from repro.models.gans import gan_specs
from repro.nn import deconv2d
from repro.nn.workload import ConvSpec


def step1_equivalence():
    print("1) transformation correctness (Fig. 6)")
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 24, 32))
    w = rng.normal(size=(4, 8, 4, 4))
    standard = deconv2d(x, w, stride=2, padding=1)
    ours = deconv_via_subconvolutions(x, w, stride=2, padding=1)
    spec = ConvSpec("demo", 8, 4, (4, 4), (24, 32), 2, 1, deconv=True)
    subs = transformed_specs(spec)
    print(f"   max |standard - transformed| = {np.abs(standard - ours).max():.2e}")
    print(f"   dense MACs {spec.macs:,} -> transformed "
          f"{sum(s.macs for s in subs):,} "
          f"({spec.macs / sum(s.macs for s in subs):.2f}x fewer)")
    print(f"   sub-kernels: {[s.kernel for s in subs]}")


def step2_scheduling():
    print("\n2) scheduling a FlowNetC-style deconvolution (qHD scale)")
    spec = ConvSpec("deconv3", 769, 128, (4, 4), (68, 120), 2, 1, deconv=True)
    hw = ASV_BASE
    model = SystolicModel(hw)
    third = hw.usable_buffer_bytes // 3
    rows = []
    naive = lower_spec(spec, transform=False)[0]
    rows.append(("baseline (naive, static partition)",
                 schedule_with_partition(naive, hw, Partition(third, third, third), model)))
    dct = lower_spec(spec, transform=True, ilar=False)
    total = None
    for i, layer in enumerate(dct):
        sched = schedule_with_partition(layer, hw, Partition(third, third, third), model)
        rows.append((f"DCT sub-conv {i} (static partition)", sched))
    convr = [optimize_layer(l, hw, model) for l in lower_spec(spec, transform=True, ilar=False)]
    ilar = optimize_layer(lower_spec(spec, transform=True, ilar=True)[0], hw, model)

    print(f"   {'strategy':38s} {'Mcycles':>9} {'DRAM MB':>9} {'energy mJ':>10}")
    naive_res = model.run_schedule(rows[0][1], validate=False)
    print(f"   {'baseline (naive deconvolution)':38s} "
          f"{naive_res.cycles / 1e6:9.2f} {naive_res.dram_bytes / 1e6:9.1f} "
          f"{1e3 * naive_res.energy_j:10.2f}")
    dct_res = [model.run_schedule(s, validate=False) for _, s in rows[1:]]
    print(f"   {'DCT (4 sub-convs, static partition)':38s} "
          f"{sum(r.cycles for r in dct_res) / 1e6:9.2f} "
          f"{sum(r.dram_bytes for r in dct_res) / 1e6:9.1f} "
          f"{1e3 * sum(r.energy_j for r in dct_res):10.2f}")
    convr_res = [model.run_schedule(s, validate=False) for s in convr]
    print(f"   {'ConvR (per-layer reuse optimizer)':38s} "
          f"{sum(r.cycles for r in convr_res) / 1e6:9.2f} "
          f"{sum(r.dram_bytes for r in convr_res) / 1e6:9.1f} "
          f"{1e3 * sum(r.energy_j for r in convr_res):10.2f}")
    ilar_res = model.run_schedule(ilar, validate=False)
    print(f"   {'ILAR (shared-ifmap co-schedule)':38s} "
          f"{ilar_res.cycles / 1e6:9.2f} {ilar_res.dram_bytes / 1e6:9.1f} "
          f"{1e3 * ilar_res.energy_j:10.2f}")


def step3_gan():
    print("\n3) a whole GAN generator (DCGAN) through the same pipeline")
    from repro.deconv import lower_network, optimize_layers

    hw = ASV_BASE
    model = SystolicModel(hw)
    specs = gan_specs("DCGAN")
    from repro.deconv.exhaustive import best_static_partition

    _, base = best_static_partition(lower_network(specs, transform=False), hw, model)
    base_res = model.run_schedules(base, validate=False)
    opt = optimize_layers(lower_network(specs, transform=True, ilar=True), hw, model)
    opt_res = model.run_schedules(opt, validate=False)
    print(f"   baseline: {base_res.cycles / 1e6:.2f} Mcycles, "
          f"{1e3 * base_res.energy_j:.2f} mJ")
    print(f"   ASV DCO : {opt_res.cycles / 1e6:.2f} Mcycles, "
          f"{1e3 * opt_res.energy_j:.2f} mJ  "
          f"({base_res.cycles / opt_res.cycles:.1f}x faster, "
          f"{base_res.energy_j / opt_res.energy_j:.1f}x less energy)")


if __name__ == "__main__":
    step1_equivalence()
    step2_scheduling()
    step3_gan()
