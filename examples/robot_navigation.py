"""Mobile-robot scenario: metric obstacle distances from a stereo rig.

The paper's motivating deployment: an energy-constrained robot that
needs continuous depth to avoid obstacles.  This example runs the full
stack on a synthetic street sequence:

* ISM estimates per-frame disparity (DNN proxy on key frames only);
* triangulation converts disparity to metric depth with a
  Bumblebee2-class camera;
* the nearest obstacle in the driving corridor is tracked per frame;
* the energy budget is compared against running the DNN every frame.

Run:  python examples/robot_navigation.py
"""

import numpy as np

from repro.core import ISM, ASVSystem, ISMConfig
from repro.datasets.kitti import _StreetScene
from repro.models.proxy import StereoDNNProxy
from repro.stereo import error_rate
from repro.stereo.triangulate import StereoCamera

# a wider-baseline rig than the Bumblebee2 so street-scale disparities
# (tens of pixels) map to street-scale depths (metres)
RIG = StereoCamera(baseline_m=0.54, focal_length_m=4.0e-3, pixel_size_m=8.0e-6)


def corridor_distance(disparity: np.ndarray, camera: StereoCamera) -> float:
    """Distance (m) to the nearest surface in the centre corridor,
    ignoring the road surface itself (bottom rows)."""
    h, w = disparity.shape
    corridor = disparity[h // 3 : (3 * h) // 4, w // 3 : (2 * w) // 3]
    depth = camera.depth_from_disparity(corridor)
    return float(np.percentile(depth[np.isfinite(depth)], 2))


def main():
    scene = _StreetScene(seed=4, size=(120, 400), max_disp=48)
    frames = [scene.render(t) for t in range(6)]

    ism = ISM(StereoDNNProxy("DispNet", seed=0),
              config=ISMConfig(propagation_window=3))
    result = ism.run_sequence(frames)

    print("frame  mode     3px-err   nearest obstacle (est / true)")
    for i, (disp, frame, key) in enumerate(
        zip(result.disparities, frames, result.key_frames)
    ):
        est = corridor_distance(disp, RIG)
        true = corridor_distance(frame.disparity, RIG)
        print(
            f"  {i}    {'key' if key else 'prop':4s}   "
            f"{error_rate(disp, frame.disparity):6.2f}%   "
            f"{est:6.2f} m / {true:6.2f} m"
        )

    system = ASVSystem()
    base = system.frame_cost("DispNet", use_ism=False, mode="baseline")
    asv = system.frame_cost("DispNet", use_ism=True, mode="ilar", pw=3)
    hw = system.hw
    batt_wh = 20.0  # a small robot battery
    hours = lambda cost: batt_wh * 3600 / (cost.energy_j * cost.fps(hw)) / 3600
    print("\ncontinuous 30 FPS depth on the accelerator (DispNet, qHD):")
    for label, cost in [("DNN every frame", base), ("ASV (ISM PW-3 + DCO)", asv)]:
        watts = cost.energy_j * 30.0
        print(f"  {label:22s} {watts:5.2f} W for depth -> "
              f"{batt_wh / watts:5.1f} h on a {batt_wh:.0f} Wh battery")


if __name__ == "__main__":
    main()
