"""Quickstart: depth from stereo with the ASV reproduction.

A five-minute tour of the public API:

1. render a synthetic stereo pair with exact ground truth;
2. estimate disparity with classic matchers and a stereo-DNN proxy;
3. run the ISM algorithm over a short stereo video;
4. ask the hardware model what each configuration costs.

Run:  python examples/quickstart.py
"""

from repro.core import ISM, ASVSystem, ISMConfig
from repro.datasets import sceneflow_scene
from repro.models.proxy import StereoDNNProxy
from repro.stereo import block_match, error_rate, sgm


def main():
    # 1. a synthetic scene: textured objects at known disparities
    scene = sceneflow_scene(seed=7, size=(160, 280), max_disp=48)
    frame = scene.render(0)
    print(f"stereo pair {frame.shape}, disparity range "
          f"[{frame.disparity.min():.1f}, {frame.disparity.max():.1f}] px")

    # 2. classic matchers vs a calibrated DNN proxy
    print("\nsingle-frame disparity (three-pixel error):")
    for name, disp in [
        ("block matching", block_match(frame.left, frame.right, 48)),
        ("SGM (8 paths)", sgm(frame.left, frame.right, 48)),
        ("DispNet proxy", StereoDNNProxy("DispNet", seed=0)(frame)),
    ]:
        print(f"  {name:16s} {error_rate(disp, frame.disparity):5.2f}%")

    # 3. ISM over a 4-frame video: DNN on frame 0, propagation after
    video = scene.sequence(4)
    ism = ISM(StereoDNNProxy("DispNet", seed=0),
              config=ISMConfig(propagation_window=4))
    result = ism.run_sequence(video)
    print("\nISM over a 4-frame video (PW-4):")
    for i, (disp, f, key) in enumerate(
        zip(result.disparities, video, result.key_frames)
    ):
        tag = "key    " if key else "non-key"
        print(f"  frame {i} [{tag}]  error {error_rate(disp, f.disparity):5.2f}%")

    # 4. what does it cost on the accelerator?
    system = ASVSystem()
    base = system.frame_cost("DispNet", use_ism=False, mode="baseline")
    asv = system.frame_cost("DispNet", use_ism=True, mode="ilar", pw=4)
    hw = system.hw
    print("\nper-frame cost on the 24x24 accelerator (DispNet, qHD):")
    print(f"  baseline DNN every frame : {1e3 * base.seconds(hw):6.1f} ms "
          f"({base.fps(hw):5.1f} FPS), {1e3 * base.energy_j:.1f} mJ")
    print(f"  ASV (ISM PW-4 + DCO)     : {1e3 * asv.seconds(hw):6.1f} ms "
          f"({asv.fps(hw):5.1f} FPS), {1e3 * asv.energy_j:.1f} mJ")
    print(f"  speedup {base.cycles / asv.cycles:.1f}x, "
          f"energy saving {100 * (1 - asv.energy_j / base.energy_j):.0f}%")


if __name__ == "__main__":
    main()
