"""Quality-aware serving: pricing a scheduler's latency win in depth.

The serving engines are analytic — they simulate latency without
computing disparities — so a load-shedding scheduler looks like a
free p99 win.  This tour attaches a :class:`~repro.pipeline.quality.
QualityProbe` to make the other half of the trade visible:

1. build an overloaded camera mix (tight-deadline HUD streams with
   real pixel data, patient logging streams without);
2. serve it under ``fifo``, ``edf`` and load-shedding ``shed`` with
   the probe replaying every run's real key/non-key/drop decisions
   through the full stereo pipeline against ground truth;
3. print the quality-vs-latency tables: ``shed`` buys its lower p99
   with stale frames (worse EPE), ``edf``'s reordering costs nothing.

Run:  python examples/quality_aware_serving.py
"""

from repro.pipeline import (
    FrameStream,
    QualityProbe,
    StreamEngine,
    format_quality_report,
    sceneflow_stream,
)

SIZE = (68, 120)
MAX_DISP = 32
N_FRAMES = 18
FPS = 60.0
SCHEDULERS = ("fifo", "edf", "shed")


def build_streams():
    """Four HUD cameras on 8 ms budgets plus four patient loggers —
    about 1.1x what one systolic array sustains."""
    hud = [
        sceneflow_stream(seed=i, name=f"hud-{i}", size=SIZE,
                         n_frames=N_FRAMES, max_disp=MAX_DISP, fps=FPS,
                         mode="baseline", pw=2, deadline_s=0.008)
        for i in range(4)
    ]
    log = [
        FrameStream(f"log-{i}", size=SIZE, n_frames=N_FRAMES, fps=FPS,
                    mode="baseline", pw=2, deadline_s=0.6)
        for i in range(4)
    ]
    return hud + log


def main():
    probe = QualityProbe(matcher="bm", max_disp=MAX_DISP)
    print(f"probing with {probe}\n")

    reports = {}
    for name in SCHEDULERS:
        engine = StreamEngine("systolic", scheduler=name, quality=probe)
        reports[name] = engine.run(build_streams())
        print(format_quality_report(reports[name]))
        print()

    fifo, edf, shed = (reports[n] for n in SCHEDULERS)
    print("the trade, summarized:")
    print(f"  fifo: p99 {fifo.worst_p99_ms:7.2f} ms, "
          f"drop {fifo.drop_rate:4.0%}, EPE {fifo.epe_px:.3f} px")
    print(f"  edf : p99 {edf.worst_p99_ms:7.2f} ms, "
          f"drop {edf.drop_rate:4.0%}, EPE {edf.epe_px:.3f} px "
          f"(same frames, same depth — reordering is free)")
    print(f"  shed: p99 {shed.worst_p99_ms:7.2f} ms, "
          f"drop {shed.drop_rate:4.0%}, EPE {shed.epe_px:.3f} px "
          f"(+{shed.epe_px - fifo.epe_px:.3f} px — the price of the tail)")


if __name__ == "__main__":
    main()
