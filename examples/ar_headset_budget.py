"""AR-headset scenario: depth under hard power and latency budgets.

Augmented-reality headsets (one of the paper's motivating platforms)
give the whole perception stack a ~1 W power envelope *and* a hard
motion-to-photon deadline — a depth frame that arrives after the
display refreshed is worthless, however fast the mean fps looked.
This example asks the co-designed system model which configurations
fit:

* per-frame DNN inference vs ISM at several propagation windows,
* serving the headset's camera rig with per-stream frame deadlines,
  comparing the deadline-miss rate under the FIFO, EDF and
  load-shedding schedulers (docs/scheduling.md),
* the static PW policy vs the motion-adaptive policy on a scene with a
  sudden camera movement,
* a per-layer profile showing where the remaining time goes.

Run:  python examples/ar_headset_budget.py
"""

import numpy as np

from repro.core import ISM, ASVSystem, ISMConfig, MotionAdaptivePolicy
from repro.datasets import sceneflow_scene
from repro.evaluation.profiling import profile_network
from repro.models.proxy import StereoDNNProxy
from repro.pipeline import FrameStream, StreamEngine
from repro.stereo import error_rate

POWER_BUDGET_W = 1.0
TARGET_FPS = 30.0
#: motion-to-photon budget per depth frame: one 90 Hz display refresh
FRAME_DEADLINE_S = 1 / 90.0


def power_table():
    system = ASVSystem()
    hw = system.hw
    print(f"DispNet depth at {TARGET_FPS:.0f} FPS — {POWER_BUDGET_W:.1f} W budget")
    print(f"  {'configuration':26s} {'ms/frame':>9} {'watts':>7}  fits?")
    rows = [("DNN every frame", dict(use_ism=False, mode="baseline"))]
    rows += [
        (f"ISM PW-{pw} + DCO", dict(use_ism=True, mode="ilar", pw=pw))
        for pw in (2, 4, 8)
    ]
    for label, kw in rows:
        cost = system.frame_cost("DispNet", **kw)
        watts = cost.energy_j * TARGET_FPS
        ok = watts <= POWER_BUDGET_W and cost.fps(hw) >= TARGET_FPS
        print(f"  {label:26s} {1e3 * cost.seconds(hw):9.1f} {watts:7.2f}"
              f"  {'yes' if ok else 'no'}")


def headset_rig():
    """The headset's camera rig as deadline-carrying streams.

    Two forward depth cameras at 60 fps must hit the display deadline
    (high priority); the high-resolution SLAM camera and the hand
    tracker are more patient; telemetry only needs to finish
    eventually.  Together they oversubscribe the array — exactly the
    regime where the scheduling discipline matters.
    """
    eyes = [
        FrameStream(f"eye-{side}", size=(135, 240), n_frames=45,
                    fps=60.0, mode="ilar", pw=4,
                    deadline_s=FRAME_DEADLINE_S, priority=2)
        for side in ("left", "right")
    ]
    slam = FrameStream("slam", size=(180, 320), n_frames=45,
                       fps=TARGET_FPS, mode="ilar", pw=2, deadline_s=0.5)
    hands = FrameStream("hand-tracker", size=(68, 120), n_frames=30,
                        fps=20.0, mode="ilar", pw=2,
                        deadline_s=0.1, priority=1)
    telemetry = FrameStream("telemetry", size=(68, 120), n_frames=15,
                            fps=10.0, mode="ilar", pw=8, deadline_s=1.0)
    return eyes + [slam, hands, telemetry]


def deadline_serving():
    """Miss rate, not mean fps: the rig under three schedulers."""
    print(f"\nserving the rig on the ASV array — "
          f"{1e3 * FRAME_DEADLINE_S:.1f} ms deadline per depth frame")
    print(f"  {'scheduler':10s} {'agg fps':>8} {'miss rate':>10} "
          f"{'drop rate':>10} {'worst late ms':>14}")
    for scheduler in ("fifo", "edf", "shed"):
        report = StreamEngine("systolic", scheduler=scheduler).run(
            headset_rig())
        print(f"  {scheduler:10s} {report.aggregate_fps:8.1f} "
              f"{report.deadline_miss_rate:10.1%} "
              f"{report.drop_rate:10.1%} "
              f"{report.worst_lateness_ms:14.2f}")


def adaptive_policy_demo():
    """A sequence with a sudden pan: the adaptive policy re-keys."""
    scene = sceneflow_scene(seed=12, size=(140, 240), max_disp=40, max_speed=1.0)
    frames = scene.sequence(3)
    # splice in a hard camera pan: later frames from a shifted time
    frames += scene.sequence(3, t0=9.0)

    proxy = StereoDNNProxy("DispNet", seed=0)
    static = ISM(proxy, ISMConfig(propagation_window=6))
    adaptive = ISM(
        proxy,
        ISMConfig(propagation_window=6),
        policy=MotionAdaptivePolicy(max_window=6, motion_threshold=3.0),
    )
    print("\nsudden-motion sequence: static PW-6 vs motion-adaptive policy")
    for label, ism in (("static", static), ("adaptive", adaptive)):
        result = ism.run_sequence(frames)
        errs = [
            error_rate(d, f.disparity)
            for d, f in zip(result.disparities, frames)
        ]
        print(f"  {label:9s} keys at {[i for i, k in enumerate(result.key_frames) if k]}"
              f"  mean error {np.mean(errs):5.2f}%  worst {max(errs):5.2f}%")


def where_does_time_go():
    print("\ntop-5 layers by cycle share (DispNet on the baseline):")
    profiles = profile_network("DispNet", "baseline", size=(270, 480))
    for p in sorted(profiles, key=lambda p: -p.cycle_share_pct)[:5]:
        kind = "deconv" if p.is_deconv else "conv"
        print(f"  {p.layer:22s} {kind:6s} {p.cycle_share_pct:5.1f}%  ({p.bound}-bound)")


if __name__ == "__main__":
    power_table()
    deadline_serving()
    adaptive_policy_demo()
    where_does_time_go()
