"""Multi-camera stream serving across execution backends.

A production-shaped tour of the backend + pipeline layers:

1. build three concurrent camera streams from different procedural
   datasets (KITTI-like street scenes, SceneFlow-like flying objects,
   and a textureless stress scene);
2. serve them on every registered execution backend through the
   :class:`StreamEngine`;
3. print per-stream latency percentiles, the streams-vs-backend
   throughput table, and the result-cache statistics.

Run:  python examples/multi_stream_serving.py
"""

from repro.backends import available_backends, get_backend
from repro.pipeline import (
    StreamEngine,
    format_backend_comparison,
    format_report,
    kitti_stream,
    sceneflow_stream,
    stress_stream,
)

SIZE = (96, 160)   # small frames keep the tour quick
N_FRAMES = 30      # one second of 30 fps video per camera
TARGET_FPS = 30.0


def build_streams():
    """Three cameras, three datasets, two networks, mixed policies."""
    return [
        kitti_stream(seed=11, name="street-cam", size=SIZE,
                     n_frames=N_FRAMES, network="DispNet",
                     mode="ilar", pw=2),
        sceneflow_stream(seed=7, name="lab-cam", size=SIZE,
                         n_frames=N_FRAMES, network="FlowNetC",
                         mode="ilar", pw=4),
        stress_stream(kind="textureless", seed=3, name="wall-cam",
                      size=SIZE, n_frames=N_FRAMES, network="DispNet",
                      mode="ilar", pw=4),
    ]


def main():
    first = build_streams()[0]
    frame = next(first.frames())
    print(f"streams carry real pixel data: first frame {frame.shape}, "
          f"disparity up to {frame.disparity.max():.1f} px\n")

    reports = []
    for name in available_backends():
        backend = get_backend(name)
        caps = backend.capabilities
        print(f"=== backend {name!r} "
              f"(modes: {', '.join(caps.modes)}; "
              f"ISM non-key frames: {'yes' if caps.supports_ism else 'no'})")
        engine = StreamEngine(backend)
        report = engine.run(build_streams())
        reports.append(report)
        print(format_report(report))
        info = report.cache
        print(f"result cache: {info.hits} hits / {info.misses} misses "
              f"({info.hit_rate:.0%} hit rate, {info.currsize} entries)\n")

    print(format_backend_comparison(reports, target_fps=TARGET_FPS))
    best = max(reports, key=lambda r: r.sustainable_streams(TARGET_FPS))
    print(f"\nwinner: {best.backend!r} sustains "
          f"{best.sustainable_streams(TARGET_FPS)} cameras at "
          f"{TARGET_FPS:.0f} fps (worst p99 {best.worst_p99_ms:.2f} ms)")


if __name__ == "__main__":
    main()
