"""Heterogeneous cluster serving + capacity planning.

The fleet-scale tour on top of the backend + pipeline layers:

1. build eight camera streams with mixed resolutions, key-frame
   policies and execution modes;
2. serve them on a heterogeneous fleet (2x systolic + 1x eyeriss +
   1x gpu) under each placement policy and compare the placements,
   per-shard utilization, and cluster throughput;
3. ask the capacity planner how many of which accelerator the same
   workload needs at 30 fps per camera.

Run:  python examples/cluster_serving.py
"""

from repro.cluster import (
    ClusterEngine,
    format_capacity_plan,
    format_cluster_report,
    format_policy_comparison,
    plan_capacity,
)
from repro.pipeline import FrameStream

SIZE = (96, 160)     # small frames keep the tour quick
N_FRAMES = 30        # one second of 30 fps video per camera
TARGET_FPS = 30.0
FLEET = ("systolic", "systolic", "eyeriss", "gpu")
POLICIES = ("round-robin", "least-loaded", "capability-aware")


def build_streams():
    """Eight cameras: ISM-heavy, all-key, and mixed-mode traffic."""
    streams = []
    for i in range(4):
        streams.append(FrameStream(
            f"street-{i}", network="DispNet", size=SIZE,
            n_frames=N_FRAMES, mode="ilar", pw=4))
    for i in range(2):
        streams.append(FrameStream(
            f"gate-{i}", network="FlowNetC", size=SIZE,
            n_frames=N_FRAMES, mode="dct", pw=1))   # every frame key
    streams.append(FrameStream(
        "dock-0", network="DispNet", size=(135, 240),
        n_frames=N_FRAMES, mode="ilar", pw=2))
    streams.append(FrameStream(
        "dock-1", network="PSMNet", size=SIZE,
        n_frames=N_FRAMES, mode="ilar", pw=8))
    return streams


def main():
    print(f"fleet: {', '.join(FLEET)}\n")

    reports = []
    for policy in POLICIES:
        engine = ClusterEngine(list(FLEET), policy=policy)
        report = engine.run(build_streams())
        reports.append(report)
        print(format_cluster_report(report))
        print()

    print(format_policy_comparison(reports, target_fps=TARGET_FPS))

    best = max(reports, key=lambda r: r.aggregate_fps)
    print(f"\nbest policy here: {best.policy!r} "
          f"({best.aggregate_fps:.0f} fps aggregate, "
          f"worst p99 {best.worst_p99_ms:.2f} ms)\n")

    plan = plan_capacity(build_streams(), target_fps=TARGET_FPS)
    print(format_capacity_plan(plan))
    print(f"\nrecommendation: {plan.best.instances}x {plan.best.backend!r} "
          f"serves all {plan.n_streams} cameras at "
          f"{TARGET_FPS:.0f} fps with "
          f"{plan.best.fleet_utilization:.0%} mean utilization")


if __name__ == "__main__":
    main()
