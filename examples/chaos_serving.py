"""Chaos serving: crash a backend mid-run, fail over, autoscale back.

The resilience tour on top of the cluster layer (docs/resilience.md):

1. build an eight-camera fleet on two GPU shards with per-frame
   deadlines tight enough that losing a shard actually hurts;
2. serve it once fault-free for the baseline envelope;
3. replay the same streams under a pinned fault schedule — ``gpu:1``
   crashes 80 ms in — and watch its streams migrate (with forced ISM
   re-key) to the survivor;
4. serve it a third time with a hysteresis autoscaler attached, which
   buys a replacement replica once the survivor's deadline pressure
   sits past the high watermark, and print the degradation envelope
   (failover latency, degraded-window p99 vs steady p99).

Everything is deterministic: re-running this script reproduces every
number byte for byte.

Run:  python examples/chaos_serving.py
"""

from repro.cluster import (
    Autoscaler,
    ChaosClusterEngine,
    ClusterEngine,
    CrashFault,
    FaultSchedule,
    format_cluster_report,
)
from repro.pipeline import FrameStream

SIZE = (96, 160)
N_FRAMES = 24
DEADLINE_S = 0.012   # tight: a lost shard pushes pressure past 1.0
FLEET = ("gpu", "gpu")
CRASH = FaultSchedule(faults=(CrashFault("gpu:1", at_s=0.08),))
SCALER = Autoscaler(backend="gpu", high_pressure=0.85, low_pressure=0.35,
                    up_hold=1, interval_s=0.05, max_replicas=4)


def build_streams():
    """Eight cameras with mixed key-frame policies, all deadlined."""
    return [
        FrameStream(f"cam-{i}", network="DispNet", size=SIZE,
                    n_frames=N_FRAMES, mode="ilar", pw=(4 if i % 2 else 2),
                    deadline_s=DEADLINE_S)
        for i in range(8)
    ]


def main():
    print(f"fleet: {', '.join(FLEET)} — "
          f"{len(build_streams())} cameras, "
          f"{1e3 * DEADLINE_S:.0f} ms frame deadline\n")

    baseline = ClusterEngine(list(FLEET), policy="least-loaded",
                             scheduler="edf").run(build_streams())
    print("--- fault-free baseline ---")
    print(format_cluster_report(baseline))

    chaos = ChaosClusterEngine(list(FLEET), policy="least-loaded",
                               scheduler="edf", faults=CRASH)
    crashed = chaos.run(build_streams())
    print("\n--- gpu:1 crashes at 80 ms, no autoscaler ---")
    print(format_cluster_report(crashed))

    rescued = ChaosClusterEngine(list(FLEET), policy="least-loaded",
                                 scheduler="edf", faults=CRASH,
                                 autoscaler=SCALER).run(build_streams())
    print("\n--- same crash, hysteresis autoscaler attached ---")
    print(format_cluster_report(rescued))

    res = rescued.resilience
    print("\ndegradation envelope (crash + autoscale run)")
    print(f"  failover latency     : "
          f"{1e3 * res.worst_failover_latency_s:.2f} ms worst stream")
    print(f"  degraded-window p99  : {res.degraded_p99_ms:.2f} ms "
          f"over {len(res.degraded_windows)} windows")
    print(f"  steady p99           : {res.steady_p99_ms:.2f} ms "
          f"(fault-free baseline p99 {baseline.worst_p99_ms:.2f} ms)")
    print(f"  replicas bought      : +{res.replicas_added} "
          f"(fleet ends at {len(rescued.shards)} shards)")
    print(f"  p99 without rescue   : {crashed.worst_p99_ms:.2f} ms; "
          f"with autoscaler {rescued.worst_p99_ms:.2f} ms")


if __name__ == "__main__":
    main()
